//! The acceptance gate, enforced as a test: `cargo xtask lint
//! --no-baseline` must exit clean on this tree — every finding either
//! fixed or carrying a justified pragma. Running it here means a plain
//! `cargo test` catches regressions even without the xtask wrapper.

use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn whole_tree_lints_clean_without_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root");
    let report = iba_lint::lint_tree(root, &[], &BTreeSet::new()).expect("lint tree");
    assert!(report.files_scanned > 30, "corpus too small");
    assert!(
        report.fresh.is_empty(),
        "tree has lint findings:\n{}",
        iba_lint::render_text(&report)
    );
}
