//! Differential test: the lexer must process every `.rs` file in the
//! repository (the richest corpus of real-world input we have) and
//! round-trip it exactly — tokens contiguous, byte offsets exact,
//! concatenated texts identical to the source, line numbers monotone.

use iba_lint::lexer::{lex, TokenKind};
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a grandparent")
}

#[test]
fn every_repo_file_lexes_and_round_trips() {
    let root = repo_root();
    let files = iba_lint::collect_rs_files(root).expect("walk repo");
    assert!(
        files.len() > 30,
        "suspiciously small corpus: {} files",
        files.len()
    );
    for rel in &files {
        let path = rel
            .split('/')
            .fold(root.to_path_buf(), |p, seg| p.join(seg));
        let source = std::fs::read_to_string(&path).expect("read source");
        let tokens = lex(&source);

        // Contiguity + exact byte offsets.
        let mut pos = 0usize;
        for tok in &tokens {
            assert_eq!(tok.start, pos, "{rel}: gap before {:?}", tok.kind);
            assert_eq!(
                &source[tok.start..tok.end()],
                tok.text,
                "{rel}: text/offset mismatch"
            );
            pos = tok.end();
        }
        assert_eq!(pos, source.len(), "{rel}: trailing bytes unlexed");

        // Round trip.
        let rebuilt: String = tokens.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, source, "{rel}: round trip failed");

        // Line numbers are monotone and match the newline count.
        let mut line = 1u32;
        for tok in &tokens {
            assert!(
                tok.line >= line || tok.line == line,
                "{rel}: line went back"
            );
            assert!(tok.line >= 1);
            line = line.max(tok.line);
        }
        let newlines = source.matches('\n').count() as u32;
        assert!(
            line <= newlines + 1,
            "{rel}: token line {line} beyond file end"
        );

        // Real source must not produce Unknown tokens.
        let unknown: Vec<_> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Unknown)
            .collect();
        assert!(unknown.is_empty(), "{rel}: unknown tokens {unknown:?}");
    }
}

#[test]
fn lexing_the_lexer_finds_its_own_raw_strings() {
    // Self-referential sanity: the rules module embeds fixtures inside
    // raw strings; lexing it must classify them as literals.
    let root = repo_root();
    let src = std::fs::read_to_string(root.join("crates/lint/src/rules.rs")).expect("read");
    let tokens = lex(&src);
    assert!(tokens.iter().any(|t| t.kind == TokenKind::RawStr));
    assert!(tokens
        .iter()
        .any(|t| t.kind == TokenKind::BlockComment || t.kind == TokenKind::LineComment));
}
