//! Snapshot test of the JSON report schema: the exact bytes `cargo
//! xtask lint --json` writes for a known finding set. CI consumers
//! parse this artifact, so shape changes must be deliberate (bump
//! `SCHEMA_VERSION` and update this snapshot together).

use iba_lint::rules::{Finding, Severity};
use iba_lint::{render_json, TreeReport, SCHEMA_VERSION};

#[test]
fn json_report_snapshot() {
    let report = TreeReport {
        files_scanned: 2,
        fresh: vec![Finding {
            file: "crates/qos/src/cac.rs".to_string(),
            line: 7,
            rule: "no-unordered-iter",
            severity: Severity::Error,
            detail: "`HashMap` in determinism-critical code".to_string(),
        }],
        baselined: vec![Finding {
            file: "crates/cli/src/main.rs".to_string(),
            line: 3,
            rule: "todo-tracked",
            severity: Severity::Warning,
            detail: "`TODO` without an issue reference".to_string(),
        }],
        suppressed: 4,
    };
    let expected = format!(
        "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"tool\": \"iba-lint\",\n  \"files_scanned\": 2,\n  \"counts\": {{\"errors\": 1, \"warnings\": 0, \"baselined\": 1, \"suppressed\": 4}},\n  \"rules\": [{{\"name\":\"no-unordered-iter\",\"severity\":\"error\"}},{{\"name\":\"no-wall-clock\",\"severity\":\"error\"}},{{\"name\":\"no-thread-spawn\",\"severity\":\"error\"}},{{\"name\":\"no-unbounded-channel\",\"severity\":\"error\"}},{{\"name\":\"no-panic\",\"severity\":\"error\"}},{{\"name\":\"forbid-unsafe\",\"severity\":\"error\"}},{{\"name\":\"no-raw-occupancy-arith\",\"severity\":\"error\"}},{{\"name\":\"no-env-read\",\"severity\":\"error\"}},{{\"name\":\"todo-tracked\",\"severity\":\"warning\"}},{{\"name\":\"pragma-hygiene\",\"severity\":\"error\"}}],\n  \"findings\": [{{\"file\":\"crates/qos/src/cac.rs\",\"line\":7,\"rule\":\"no-unordered-iter\",\"severity\":\"error\",\"detail\":\"`HashMap` in determinism-critical code\",\"baselined\":false}},{{\"file\":\"crates/cli/src/main.rs\",\"line\":3,\"rule\":\"todo-tracked\",\"severity\":\"warning\",\"detail\":\"`TODO` without an issue reference\",\"baselined\":true}}]\n}}\n"
    );
    assert_eq!(render_json(&report), expected);
}

#[test]
fn empty_report_is_valid_shape() {
    let json = render_json(&TreeReport::default());
    assert!(json.starts_with("{\n  \"schema_version\": "));
    assert!(json.contains("\"findings\": []"));
    assert!(json.contains(
        "\"counts\": {\"errors\": 0, \"warnings\": 0, \"baselined\": 0, \"suppressed\": 0}"
    ));
    assert!(json.ends_with("}\n"));
}

#[test]
fn json_strings_are_escaped() {
    let report = TreeReport {
        files_scanned: 1,
        fresh: vec![Finding {
            file: "a.rs".to_string(),
            line: 1,
            rule: "no-panic",
            severity: Severity::Error,
            detail: "quote \" backslash \\ newline \n".to_string(),
        }],
        baselined: Vec::new(),
        suppressed: 0,
    };
    let json = render_json(&report);
    assert!(json.contains("quote \\\" backslash \\\\ newline \\n"));
}
