//! Differential property tests for the sharded admission service.
//!
//! 100 seeded random admit/teardown/repair traces, each replayed at
//! 1, 2 and 8 shards, must produce outcomes, final tables and
//! shard-invariant metrics **byte-identical** to the synchronous
//! single-owner [`QosManager`] — including the interleaved multi-hop
//! batches that fail mid-path and must roll back (the run asserts
//! rollbacks actually occurred, so the equivalence is not vacuous).

use iba_core::SlTable;
use iba_obs::{ObsRecorder, Sample, SampleValue};
use iba_qos::service::{apply_trace_sequential, generate_trace, run_trace, TraceConfig};
use iba_qos::{QosManager, TraceOutcome};
use iba_topo::{irregular, updown};

const SEEDS: u64 = 100;
const TRACE_LEN: usize = 48;
const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

fn build_manager(seed: u64) -> (QosManager, u16) {
    let topo = irregular::generate(irregular::IrregularConfig::with_switches(4, seed));
    let hosts = topo.num_hosts() as u16;
    let routing = updown::compute(&topo);
    (
        QosManager::new(topo, routing, SlTable::paper_table1()),
        hosts,
    )
}

/// The shard-invariant metric view: everything but the `serve_*`
/// samples, which legitimately depend on the shard count.
fn invariant_samples(rec: &ObsRecorder) -> Vec<Sample> {
    rec.metrics
        .snapshot()
        .into_iter()
        .filter(|s| !s.name.starts_with("serve_"))
        .collect()
}

fn count_of(rec: &ObsRecorder, name: &str) -> u64 {
    rec.metrics
        .snapshot()
        .iter()
        .filter(|s| s.name == name)
        .map(|s| match s.value {
            SampleValue::Count(v) => v,
            SampleValue::Hist { count, .. } => count,
        })
        .sum()
}

#[test]
fn sharded_service_matches_sequential_on_100_seeds() {
    let mut total_rollbacks = 0u64;
    let mut total_rejects = 0usize;
    for seed in 0..SEEDS {
        let (mut seq_mgr, hosts) = build_manager(seed);
        let ops = generate_trace(&TraceConfig::new(hosts, seed, TRACE_LEN));
        let mut seq_rec = ObsRecorder::new();
        let seq = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        let seq_tables = format!("{:?}", seq_mgr.port_tables());
        let seq_metrics = format!("{:?}", invariant_samples(&seq_rec));
        total_rejects += seq
            .iter()
            .filter(|o| matches!(o, TraceOutcome::Rejected(_)))
            .count();

        for shards in SHARD_COUNTS {
            let (planner, _) = build_manager(seed);
            let mut rec = ObsRecorder::new();
            let report = run_trace(&planner, &ops, shards, &mut rec);
            assert_eq!(
                report.outcomes, seq,
                "outcomes diverge: seed {seed}, {shards} shards"
            );
            assert_eq!(
                format!("{:?}", report.tables),
                seq_tables,
                "tables diverge: seed {seed}, {shards} shards"
            );
            assert_eq!(
                format!("{:?}", invariant_samples(&rec)),
                seq_metrics,
                "metrics diverge: seed {seed}, {shards} shards"
            );
            report
                .tables
                .check_all()
                .unwrap_or_else(|e| panic!("inconsistent: seed {seed}, {shards} shards: {e}"));
            total_rollbacks += count_of(&rec, "serve_shard_rollback_total");
        }
    }
    // The equivalence must have been exercised by real mid-path
    // failures, not an all-accepting workload.
    assert!(total_rejects > 0, "no rejected admissions across all seeds");
    assert!(
        total_rollbacks > 0,
        "no multi-hop batch ever rolled back across all seeds"
    );
}

/// After every repair-free trace (repair evictions legitimately shed
/// weight, so conservation is only exact without them), the weight
/// reserved across all shards' tables must equal the live connections'
/// `weight x hops` — i.e. no rolled-back partial batch leaked a
/// reservation anywhere — and every table must pass the named
/// consistency invariants from `iba_core::invariants`.
#[test]
fn weight_is_conserved_across_all_shards_after_every_trace() {
    for seed in 0..SEEDS {
        let (_, hosts) = build_manager(seed);
        let ops = generate_trace(&TraceConfig {
            repair_pct: 0,
            ..TraceConfig::new(hosts, seed, TRACE_LEN)
        });
        for shards in SHARD_COUNTS {
            let (planner, _) = build_manager(seed);
            let mut rec = ObsRecorder::new();
            let report = run_trace(&planner, &ops, shards, &mut rec);
            let reserved: u64 = report
                .tables
                .tables()
                .map(|(_, t)| u64::from(t.reserved_weight()))
                .sum();
            let live: u64 = report
                .live
                .iter()
                .map(|c| u64::from(c.weight) * c.hops.len() as u64)
                .sum();
            assert_eq!(
                reserved, live,
                "leaked reservation: seed {seed}, {shards} shards"
            );
            for (key, table) in report.tables.tables() {
                iba_core::invariants::check_table(table).unwrap_or_else(|e| {
                    panic!("invariant broken at {key:?}: seed {seed}, {shards} shards: {e}")
                });
            }
        }
    }
}
