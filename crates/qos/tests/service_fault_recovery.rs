//! Differential property tests for the admission service's
//! control-plane fault engine.
//!
//! 100 seeded random traces, each replayed under a seeded fault
//! calendar (worker crashes at every protocol step, vote-message
//! loss/delay, reply loss), must still converge — outcomes and final
//! tables **byte-identical** to the synchronous single-owner
//! [`QosManager`] — because the write-ahead journal, deterministic
//! timeouts and idempotent retries absorb every injected fault. The
//! aggregate assertions at the bottom prove the equivalence is not
//! vacuous: real crashes, replays and timeouts occurred.

use iba_core::SlTable;
use iba_obs::ObsRecorder;
use iba_qos::service::{apply_trace_sequential, generate_trace, TraceConfig};
use iba_qos::{run_trace_faulted, QosManager, ServeFaultPlan, ServeOptions};
use iba_topo::{irregular, updown};

const SEEDS: u64 = 100;
const TRACE_LEN: usize = 48;
const INTENSITY_PCT: u8 = 35;

fn build_manager(seed: u64) -> (QosManager, u16) {
    let topo = irregular::generate(irregular::IrregularConfig::with_switches(4, seed));
    let hosts = topo.num_hosts() as u16;
    let routing = updown::compute(&topo);
    (
        QosManager::new(topo, routing, SlTable::paper_table1()),
        hosts,
    )
}

#[test]
fn faulted_service_recovers_to_sequential_on_100_seeds() {
    let mut crashes = 0u64;
    let mut timeouts = 0u64;
    let mut losses = 0u64;
    for seed in 0..SEEDS {
        let (mut seq_mgr, hosts) = build_manager(seed);
        let ops = generate_trace(&TraceConfig::new(hosts, seed, TRACE_LEN));
        let mut seq_rec = ObsRecorder::new();
        let seq = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        let seq_tables = format!("{:?}", seq_mgr.port_tables());

        let plan = ServeFaultPlan::generate(seed, &ops, INTENSITY_PCT);
        let (planner, _) = build_manager(seed);
        let mut rec = ObsRecorder::new();
        let report =
            run_trace_faulted(&planner, &ops, 2, &plan, &ServeOptions::default(), &mut rec);
        assert_eq!(report.outcomes, seq, "outcomes diverge: seed {seed}");
        assert_eq!(
            format!("{:?}", report.tables),
            seq_tables,
            "tables diverge after journal replay: seed {seed}"
        );
        report
            .tables
            .check_all()
            .unwrap_or_else(|e| panic!("inconsistent after recovery: seed {seed}: {e}"));
        crashes += report.fault_stats.crashes;
        timeouts += report.fault_stats.timeouts;
        losses += report.fault_stats.msg_losses + report.fault_stats.reply_losses;
    }
    // The recovery machinery must actually have been exercised.
    assert!(crashes > 0, "no worker crash was ever injected");
    assert!(timeouts > 0, "no deterministic timeout ever fired");
    assert!(losses > 0, "no message or reply was ever lost");
}

/// The faulted run must be a pure function of `(trace, plan)`: two
/// executions with the same inputs produce identical outcomes, tables
/// and fault statistics even though worker scheduling is free-running.
#[test]
fn faulted_run_is_deterministic_across_executions() {
    for seed in [3u64, 17, 41] {
        let (_, hosts) = build_manager(seed);
        let ops = generate_trace(&TraceConfig::new(hosts, seed, TRACE_LEN));
        let plan = ServeFaultPlan::generate(seed, &ops, INTENSITY_PCT);
        let runs: Vec<_> = (0..2)
            .map(|_| {
                let (planner, _) = build_manager(seed);
                let mut rec = ObsRecorder::new();
                let report =
                    run_trace_faulted(&planner, &ops, 2, &plan, &ServeOptions::default(), &mut rec);
                (
                    report.outcomes.clone(),
                    format!("{:?}", report.tables),
                    report.fault_stats,
                )
            })
            .collect();
        assert_eq!(
            runs[0], runs[1],
            "faulted run nondeterministic: seed {seed}"
        );
    }
}
