//! The sharded admission-control service: the paper's §5 CAC made
//! concurrent without a global lock — and without giving up the
//! workspace's byte-identical determinism contract.
//!
//! # Ownership
//!
//! [`PortTables`] is partitioned by output port: port `k` belongs to
//! shard `k.stable_code() % shards`, and each shard **exclusively
//! owns** its partition behind a bounded-channel worker thread. No
//! table is ever touched by two threads; there is no lock at all.
//!
//! # Batched multi-hop admission
//!
//! An admission must reserve every output port on the path or nothing
//! (the paper: "it is only accepted if there are available resources"
//! at each node). The coordinator runs a two-phase protocol per
//! request:
//!
//! 1. **Vote** — every participating shard answers, per hop, the exact
//!    error the real admission would return ([`HighPriorityTable::
//!    check_admit`] mirrors `admit`'s check order), without mutating.
//! 2. **Commit** — all hops voted yes: each shard reserves its hops in
//!    ascending canonical path order.
//! 3. **Abort** — some hop voted no: let `k` be the *first* failing
//!    path index. Shards replay exactly what the sequential
//!    transaction would have done: admit every owned hop before `k`,
//!    re-run the failing admission at `k` (it records the same
//!    allocator probes and fails the same way), then roll the
//!    reservations back in descending order. Hops after `k` are never
//!    touched. Because rollback releases can trigger defragmentation,
//!    this mutation-faithful replay — not a mere skip — is what keeps
//!    the final tables byte-identical to the single-owner
//!    [`QosManager`].
//!
//! # Determinism argument
//!
//! * Each table sees exactly the per-table operation sequence the
//!   sequential manager would apply, in the same order: the
//!   coordinator dispatches operations **strictly in trace order**,
//!   holds a shard claim for every in-flight operation, and never
//!   lets two in-flight operations share a shard. Outcomes and final
//!   table bytes are therefore independent of the shard count.
//! * Every random stream is a [`SplitMix64`] keyed by the owning
//!   port's [`PortKey::stable_code`], so repair randomness is
//!   identical no matter which shard (or how many shards) runs it.
//! * The coordinator's scheduling state (queue depth, dispatch tick)
//!   is a pure function of the trace and the shard count — worker
//!   reply timing cannot leak into any observable.
//!
//! The differential test (`tests/service_equivalence.rs`) proves the
//! claim on 100 random traces at 1, 2 and 8 shards.

use crate::cac::{PortKey, PortTables, RejectReason};
use crate::connection::{ConnectionId, HopReservation};
use crate::manager::QosManager;
use crate::recovery::{RecoveryManager, RecoverySummary};
use iba_core::{Distance, ServiceLevel, SplitMix64, TableError, VirtualLane, Weight};
use iba_traffic::ConnectionRequest;
use std::collections::BTreeMap;
use std::sync::mpsc;

/// Domain-separation constant for trace generation.
const TRACE_SEED: u64 = 0x5E87_EACE_5EED;
/// Domain-separation constant for table corruption (the same one the
/// single-stream [`QosManager::corrupt_tables`] uses).
const CORRUPT_SEED: u64 = 0x07AB_1EC0_5EED;
/// Odd multiplier spreading a port's stable code into a sub-seed.
const KEY_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;
/// Ring capacity of each shard worker's request tracer (16-byte
/// records; the ring keeps the newest protocol stages when a long
/// trace overflows it).
const WORKER_TRACE_CAP: usize = 16384;

/// One operation of a request trace, addressed by request id (`rid`).
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// Admit a connection (the request's `id` is the trace `rid`).
    Admit(ConnectionRequest),
    /// Tear down the connection admitted under this `rid` (a no-op
    /// outcome when it was rejected, already torn down, or unknown).
    Teardown(u32),
    /// Damage every table with seed-keyed corruption, then repair all
    /// of them (the chaos drill as a trace citizen).
    ///
    /// Repair evicts and re-admits sequences under fresh ids, so the
    /// hop reservations of connections admitted earlier go stale — a
    /// stale release could alias a rebuilt sequence. A repair
    /// therefore **invalidates every live connection handle**:
    /// tearing one down afterwards reports `TornDown(false)`.
    Repair {
        /// Seed for both the corruption and the repair streams.
        seed: u64,
    },
}

/// The outcome of one trace operation — the unit of the differential
/// test: a sharded run must produce the exact same outcome vector as
/// the sequential manager.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceOutcome {
    /// The connection was admitted end to end.
    Admitted {
        /// The request id now live.
        rid: u32,
    },
    /// The request was rejected (with the failing hop where the
    /// reason has one).
    Rejected(RejectReason),
    /// Teardown result: `true` when a live connection was released.
    TornDown(bool),
    /// Corruption + repair pass over every table.
    Repaired {
        /// Damage operations injected before the repair.
        damage: usize,
        /// Aggregated repair summary across all tables.
        summary: RecoverySummary,
    },
}

/// Parameters of [`generate_trace`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Hosts addressable by generated requests (`src`/`dst < hosts`).
    pub hosts: u16,
    /// Operations to generate.
    pub len: usize,
    /// Seed of the trace stream.
    pub seed: u64,
    /// Percentage of operations that are corrupt+repair drills
    /// (0 disables them — required by the strict weight-conservation
    /// invariant, which repair evictions legitimately break).
    pub repair_pct: u8,
}

impl TraceConfig {
    /// The standard admit-heavy mix: ~60% admits (loaded enough to
    /// force mid-path rejections and rollbacks), ~32% teardowns of
    /// earlier requests, 8% repair drills.
    #[must_use]
    pub fn new(hosts: u16, seed: u64, len: usize) -> Self {
        TraceConfig {
            hosts,
            len,
            seed,
            repair_pct: 8,
        }
    }
}

/// Generates a seeded admit/teardown/repair trace. Request ids are the
/// operation indices, so every `rid` is unique and teardowns of
/// rejected or double-torn requests occur naturally.
#[must_use]
pub fn generate_trace(cfg: &TraceConfig) -> Vec<TraceOp> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ TRACE_SEED);
    let hosts = cfg.hosts.max(2);
    let mut ops = Vec::with_capacity(cfg.len);
    for i in 0..cfg.len {
        let roll = rng.next_u64() % 100;
        let repair_band = u64::from(cfg.repair_pct.min(100));
        let teardown_band = repair_band + 32;
        if i > 0 && roll < repair_band {
            ops.push(TraceOp::Repair {
                seed: rng.next_u64(),
            });
        } else if i > 0 && roll < teardown_band {
            ops.push(TraceOp::Teardown((rng.next_u64() % i as u64) as u32));
        } else {
            let src = (rng.next_u64() % u64::from(hosts)) as u16;
            let dst = ((u64::from(src) + 1 + rng.next_u64() % u64::from(hosts - 1))
                % u64::from(hosts)) as u16;
            let distance = match rng.next_u64() % 4 {
                0 => Distance::D8,
                1 => Distance::D16,
                2 => Distance::D32,
                _ => Distance::D64,
            };
            // Large enough that a handful of connections saturate a
            // port (forcing mid-path rejections), small enough that
            // plenty are admitted.
            let mean_bw_mbps = (1 + rng.next_u64() % 50) as f64 * 10.0;
            // `% 13` keeps the id in the paper's 13 QoS SLs, so the
            // constructor cannot fail; the else arm is unreachable.
            if let Some(sl) = ServiceLevel::new((rng.next_u64() % 13) as u8) {
                ops.push(TraceOp::Admit(ConnectionRequest {
                    id: i as u32,
                    src: iba_topo::HostId(src),
                    dst: iba_topo::HostId(dst),
                    sl,
                    distance,
                    mean_bw_mbps,
                    packet_bytes: 256,
                }));
            } else {
                ops.push(TraceOp::Teardown(0));
            }
        }
    }
    ops
}

/// Per-table sub-seed for a port's corruption/repair streams: the
/// trace seed spread by the port's stable code, so the stream is a
/// property of the *table*, not of whichever shard happens to own it.
fn keyed_seed(seed: u64, key: PortKey) -> u64 {
    seed ^ key.stable_code().wrapping_mul(KEY_SPREAD)
}

/// Deterministically corrupts every touched table of a registry, each
/// with its own [`SplitMix64`] stream keyed by the port's stable code.
/// Returns the number of damage operations applied.
///
/// Unlike [`QosManager::corrupt_tables`] (one stream walked across all
/// tables in key order) the per-table keying makes the damage
/// independent of which other tables sit in the same registry — the
/// property that lets shards corrupt their partitions in isolation and
/// still match a sequential pass over the whole registry.
pub fn corrupt_tables_keyed(tables: &mut PortTables, seed: u64) -> usize {
    let mut ops = 0;
    for key in tables.sorted_keys() {
        let mut rng = SplitMix64::seed_from_u64(keyed_seed(seed ^ CORRUPT_SEED, key));
        if let Some(t) = tables.get_table_mut(key) {
            ops += t.inject_corruption(&mut rng);
        }
    }
    ops
}

/// Repairs every touched table of a registry with a fresh
/// [`RecoveryManager`] per table, seeded by the port's stable code —
/// the shard-invariant counterpart of
/// [`QosManager::repair_tables`]. Returns the field-wise sum of the
/// per-table summaries.
pub fn repair_tables_keyed(
    tables: &mut PortTables,
    seed: u64,
    rec: &mut dyn iba_obs::Recorder,
) -> RecoverySummary {
    let mut total = RecoverySummary::default();
    for key in tables.sorted_keys() {
        let mut recovery = RecoveryManager::new(keyed_seed(seed, key));
        if let Some(t) = tables.get_table_mut(key) {
            let s = recovery.repair_table(t, rec);
            total.tables += s.tables;
            total.repaired += s.repaired;
            total.evicted += s.evicted;
            total.reinstalled += s.reinstalled;
            total.lost += s.lost;
        }
    }
    total
}

/// Applies a trace to the single-owner [`QosManager`] — the reference
/// the sharded service is differentially tested against. Teardowns
/// address requests by `rid` through a private map, so a double
/// teardown can never hit a recycled connection slot.
pub fn apply_trace_sequential(
    mgr: &mut QosManager,
    ops: &[TraceOp],
    rec: &mut dyn iba_obs::Recorder,
) -> Vec<TraceOutcome> {
    let mut ids: BTreeMap<u32, ConnectionId> = BTreeMap::new();
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let outcome = match op {
                TraceOp::Admit(req) => match mgr.request_observed(req, rec) {
                    Ok(id) => {
                        ids.insert(req.id, id);
                        TraceOutcome::Admitted { rid: req.id }
                    }
                    Err(e) => TraceOutcome::Rejected(e),
                },
                TraceOp::Teardown(rid) => {
                    let torn = ids
                        .remove(rid)
                        .map(|id| mgr.teardown_observed(id, rec))
                        .unwrap_or(false);
                    TraceOutcome::TornDown(torn)
                }
                TraceOp::Repair { seed } => {
                    let damage = corrupt_tables_keyed(mgr.tables_mut(), *seed);
                    let summary = repair_tables_keyed(mgr.tables_mut(), *seed, rec);
                    // Repair invalidates the live handles (see TraceOp).
                    ids.clear();
                    TraceOutcome::Repaired { damage, summary }
                }
            };
            // One logical tick per applied op — the same clock the
            // sharded coordinator advances per finalized op, so a
            // timeline attached to either recorder windows identically.
            rec.tick((i + 1) as u64);
            outcome
        })
        .collect()
}

/// A connection still live when the trace ended (weight-conservation
/// audits sum `weight × hops` over these).
#[derive(Clone, Debug)]
pub struct LiveConn {
    /// The request id.
    pub rid: u32,
    /// Per-hop reserved weight.
    pub weight: Weight,
    /// Per-hop reservations, source-side first.
    pub hops: Vec<HopReservation>,
}

/// What a sharded trace run produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-operation outcomes, in trace order.
    pub outcomes: Vec<TraceOutcome>,
    /// The reassembled port tables (union of all shard partitions).
    pub tables: PortTables,
    /// Admitted requests.
    pub accepted: u64,
    /// Rejected requests (planner and table rejections).
    pub rejected: u64,
    /// Live connections released by teardowns.
    pub released: u64,
    /// Connections still live at the end, in `rid` order.
    pub live: Vec<LiveConn>,
    /// Per-request causal trace records (`TraceEvent::Request` only),
    /// drained from the coordinator's ring first and then each
    /// shard's in shard order — a deterministic input for
    /// `iba_obs::request::reassemble`. Empty when the coordinator's
    /// recorder carries no tracer.
    pub request_records: Vec<(u64, iba_obs::TraceEvent)>,
}

/// The shard owning an output port: a pure function of the port's
/// stable code, independent of process, registry contents and trace.
#[must_use]
pub fn shard_of(key: PortKey, shards: usize) -> usize {
    (key.stable_code() % shards.max(1) as u64) as usize
}

/// Everything a shard needs to evaluate one admission hop.
#[derive(Clone, Copy, Debug)]
struct AdmitSpec {
    sl: ServiceLevel,
    vl: VirtualLane,
    distance: Distance,
    weight: Weight,
}

/// One hop's vote: path index and the exact admission result.
type HopVote = (usize, Result<(), TableError>);

/// Coordinator → shard messages. `hops` carry `(path index, key)` in
/// ascending path order — the canonical reservation order.
enum ToShard {
    Vote {
        op: usize,
        spec: AdmitSpec,
        hops: Vec<(usize, PortKey)>,
    },
    Commit {
        op: usize,
        spec: AdmitSpec,
        hops: Vec<(usize, PortKey)>,
    },
    Abort {
        op: usize,
        spec: AdmitSpec,
        hops: Vec<(usize, PortKey)>,
        fail_at: usize,
    },
    Release {
        op: usize,
        weight: Weight,
        hops: Vec<(usize, HopReservation)>,
    },
    Repair {
        op: usize,
        seed: u64,
    },
    Finish,
}

/// Shard → coordinator replies.
enum FromShard {
    Voted {
        op: usize,
        votes: Vec<HopVote>,
    },
    Committed {
        op: usize,
        hops: Vec<(usize, HopReservation)>,
    },
    Aborted {
        op: usize,
        error: Option<TableError>,
    },
    Released {
        op: usize,
    },
    Repaired {
        op: usize,
        damage: usize,
        summary: RecoverySummary,
    },
    Finished {
        shard: usize,
        tables: Box<PortTables>,
        rec: Box<iba_obs::ObsRecorder>,
    },
}

/// Coordinator-side state of one dispatched, unfinalized operation.
enum OpState {
    /// Outcome known; waiting for its in-order finalize turn.
    Resolved(Resolution),
    /// Admission: waiting for `waiting` shards' votes.
    Voting {
        rid: u32,
        spec: AdmitSpec,
        path: Vec<PortKey>,
        participants: Vec<usize>,
        waiting: usize,
        votes: Vec<HopVote>,
    },
    /// Admission: all votes yes, waiting for shard commits.
    Committing {
        rid: u32,
        spec: AdmitSpec,
        waiting: usize,
        hops: Vec<(usize, HopReservation)>,
    },
    /// Admission: vote failed at `fail_key`, shards rolling back.
    Aborting {
        fail_key: PortKey,
        waiting: usize,
        error: Option<TableError>,
    },
    /// Teardown: waiting for shard releases.
    Releasing { waiting: usize },
    /// Repair drill: waiting for every shard's pass.
    Repairing {
        waiting: usize,
        damage: usize,
        summary: RecoverySummary,
    },
}

/// A resolved operation, ready to finalize.
enum Resolution {
    Admitted {
        rid: u32,
        sl: u8,
        weight: Weight,
        hops: Vec<HopReservation>,
    },
    Rejected(RejectReason),
    TornDown(bool),
    Repaired {
        damage: usize,
        summary: RecoverySummary,
    },
}

fn reject_for(error: Option<TableError>, key: PortKey) -> RejectReason {
    match error {
        Some(TableError::NoFreeSequence) => RejectReason::NoFreeSequence(key),
        Some(TableError::CapacityExceeded) => RejectReason::CapacityExceeded(key),
        Some(TableError::RequestTooLarge) => RejectReason::RequestTooLarge,
        _ => RejectReason::InvalidRequest,
    }
}

/// The shard worker: exclusively owns one partition of the port
/// tables and executes the coordinator's protocol messages in arrival
/// order. It never blocks on the (unbounded) reply channel, so the
/// service cannot deadlock.
fn shard_worker(
    shard: usize,
    base: &PortTables,
    rx: &mpsc::Receiver<ToShard>,
    tx: &mpsc::Sender<FromShard>,
) {
    use iba_obs::{request_stage, Recorder};
    let mut tables = base.empty_like();
    let mut rec = iba_obs::ObsRecorder::with_tracer(WORKER_TRACE_CAP);
    let lane = shard as u8;
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Vote { op, spec, hops } => {
                rec.tick(op as u64);
                let votes = hops
                    .iter()
                    .map(|&(i, k)| {
                        rec.request_stage(op as u32, request_stage::VOTE, lane, i as u8);
                        (
                            i,
                            tables.probe_admit(k, spec.sl, spec.distance, spec.weight),
                        )
                    })
                    .collect();
                let _ = tx.send(FromShard::Voted { op, votes });
            }
            ToShard::Commit { op, spec, hops } => {
                rec.tick(op as u64);
                let wanted = hops.len();
                let mut done = Vec::with_capacity(wanted);
                for (i, k) in hops {
                    if let Ok(h) =
                        tables.admit_at(k, spec.sl, spec.vl, spec.distance, spec.weight, &mut rec)
                    {
                        rec.serve_shard_admit(lane);
                        rec.request_stage(op as u32, request_stage::COMMIT, lane, i as u8);
                        done.push((i, h));
                    }
                }
                // The conflict gate guarantees nothing touched these
                // tables since the vote, so every voted-yes hop
                // commits.
                assert!(
                    done.len() == wanted,
                    "vote/commit divergence on shard {shard}"
                );
                let _ = tx.send(FromShard::Committed { op, hops: done });
            }
            ToShard::Abort {
                op,
                spec,
                hops,
                fail_at,
            } => {
                rec.tick(op as u64);
                rec.request_stage(op as u32, request_stage::ABORT, lane, fail_at as u8);
                // Mutation-faithful rollback replay (see module docs):
                // admit the owned hops before the failing index...
                let mut done: Vec<(usize, HopReservation)> = Vec::new();
                for &(i, k) in hops.iter().filter(|&&(i, _)| i < fail_at) {
                    if let Ok(h) =
                        tables.admit_at(k, spec.sl, spec.vl, spec.distance, spec.weight, &mut rec)
                    {
                        done.push((i, h));
                    }
                }
                assert!(
                    done.len() == hops.iter().filter(|&&(i, _)| i < fail_at).count(),
                    "vote/rollback divergence on shard {shard}"
                );
                // ...replay the failing admission (recording the same
                // allocator probes the sequential path records)...
                let mut error = None;
                if let Some(&(_, k)) = hops.iter().find(|&&(i, _)| i == fail_at) {
                    match tables.admit_at(k, spec.sl, spec.vl, spec.distance, spec.weight, &mut rec)
                    {
                        Err(e) => {
                            error = Some(e);
                            rec.serve_shard_reject(lane);
                        }
                        Ok(h) => {
                            // Undo the stray reservation before the
                            // invariant below reports the divergence.
                            let _ = tables.release_hop(h, spec.weight);
                        }
                    }
                    assert!(
                        error.is_some(),
                        "aborted hop admitted despite a failing vote on shard {shard}"
                    );
                }
                // ...then roll back in descending path order, exactly
                // like the sequential transaction.
                if !done.is_empty() {
                    rec.serve_shard_rollback(lane);
                }
                for &(_, h) in done.iter().rev() {
                    let _ = tables.release_hop(h, spec.weight);
                }
                let _ = tx.send(FromShard::Aborted { op, error });
            }
            ToShard::Release { op, weight, hops } => {
                rec.tick(op as u64);
                // Descending path order, mirroring `release_path`. A
                // failed hop (evicted by an earlier repair) is
                // absorbed exactly like the sequential teardown does.
                for &(_, h) in hops.iter().rev() {
                    let _ = tables.release_hop(h, weight);
                }
                let _ = tx.send(FromShard::Released { op });
            }
            ToShard::Repair { op, seed } => {
                rec.tick(op as u64);
                let damage = corrupt_tables_keyed(&mut tables, seed);
                let summary = repair_tables_keyed(&mut tables, seed, &mut rec);
                let _ = tx.send(FromShard::Repaired {
                    op,
                    damage,
                    summary,
                });
            }
            ToShard::Finish => {
                let _ = tx.send(FromShard::Finished {
                    shard,
                    tables: Box::new(tables),
                    rec: Box::new(rec),
                });
                return;
            }
        }
    }
}

/// What the coordinator decided to do with the next trace operation.
enum Dispatch {
    /// Resolved locally, no shard involved.
    Local(Resolution),
    /// Admission voted across `participants`.
    Admit {
        rid: u32,
        spec: AdmitSpec,
        path: Vec<PortKey>,
        participants: Vec<usize>,
    },
    /// Teardown released across `participants`.
    Teardown {
        weight: Weight,
        hops: Vec<HopReservation>,
        participants: Vec<usize>,
    },
    /// Repair drill across every shard.
    Repair { seed: u64 },
}

/// Shards of a hop list, ascending and deduplicated.
fn participants_of(keys: &[PortKey], shards: usize) -> Vec<usize> {
    let mut out: Vec<usize> = keys.iter().map(|&k| shard_of(k, shards)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs a trace through the sharded service and returns the report.
///
/// `planner` supplies the topology, routing, SL configuration and
/// table template; its own tables are never touched. Worker metrics
/// (allocator probes, recovery counters, `serve_shard_*`) merge into
/// `rec` alongside the coordinator's admission counters when the run
/// finishes.
///
/// Outcomes and final tables are byte-identical to
/// [`apply_trace_sequential`] on the same trace at **any** shard
/// count; only the `serve_*` metrics depend on the shard count.
pub fn run_trace(
    planner: &QosManager,
    ops: &[TraceOp],
    shards: usize,
    rec: &mut iba_obs::ObsRecorder,
) -> ServeReport {
    use iba_obs::{request_stage, Recorder};
    let shards = shards.max(1);
    let base = planner.port_tables();
    // lint: allow(no-thread-spawn) -- the shard workers ARE the service: each exclusively owns one table partition, and the coordinator's strict in-order dispatch keeps every observable byte-identical at any shard count (proven by tests/service_equivalence.rs).
    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<FromShard>();
        let mut to_shard: Vec<mpsc::SyncSender<ToShard>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<ToShard>(8);
            to_shard.push(tx);
            let reply = reply_tx.clone();
            scope.spawn(move || shard_worker(s, base, &rx, &reply));
        }
        drop(reply_tx);

        let n = ops.len();
        let mut outcomes: Vec<TraceOutcome> = Vec::with_capacity(n);
        let mut pending: BTreeMap<usize, OpState> = BTreeMap::new();
        let mut dispatched_at: BTreeMap<usize, usize> = BTreeMap::new();
        let mut claims: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut claimed = vec![false; shards];
        let mut ids: BTreeMap<u32, LiveConn> = BTreeMap::new();
        let (mut accepted, mut rejected, mut released) = (0u64, 0u64, 0u64);
        let (mut next, mut dispatch) = (0usize, 0usize); // finalize / dispatch cursors

        while next < n {
            // Dispatch strictly in trace order while the head of the
            // undispatched suffix is eligible. Stopping at the first
            // ineligible operation (instead of skipping it) is what
            // keeps every per-shard message stream a pure function of
            // the trace.
            while dispatch < n {
                let in_flight = dispatch - next;
                let Some(action) = plan_dispatch(
                    &ops[dispatch],
                    planner,
                    shards,
                    in_flight,
                    &claimed,
                    &mut ids,
                ) else {
                    break;
                };
                rec.serve_queue_depth(in_flight as u64);
                rec.request_stage(
                    dispatch as u32,
                    request_stage::DISPATCH,
                    0,
                    request_stage::NO_PATH,
                );
                dispatched_at.insert(dispatch, next);
                let op = dispatch;
                match action {
                    Dispatch::Local(res) => {
                        pending.insert(op, OpState::Resolved(res));
                    }
                    Dispatch::Admit {
                        rid,
                        spec,
                        path,
                        participants,
                    } => {
                        for &s in &participants {
                            claimed[s] = true;
                            let hops: Vec<(usize, PortKey)> = path
                                .iter()
                                .enumerate()
                                .filter(|&(_, k)| shard_of(*k, shards) == s)
                                .map(|(i, &k)| (i, k))
                                .collect();
                            let _ = to_shard[s].send(ToShard::Vote { op, spec, hops });
                        }
                        claims.insert(op, participants.clone());
                        let waiting = participants.len();
                        pending.insert(
                            op,
                            OpState::Voting {
                                rid,
                                spec,
                                path,
                                participants,
                                waiting,
                                votes: Vec::new(),
                            },
                        );
                    }
                    Dispatch::Teardown {
                        weight,
                        hops,
                        participants,
                    } => {
                        for &s in &participants {
                            claimed[s] = true;
                            let mine: Vec<(usize, HopReservation)> = hops
                                .iter()
                                .enumerate()
                                .filter(|&(_, h)| {
                                    shard_of(
                                        PortKey {
                                            node: h.node,
                                            port: h.port,
                                        },
                                        shards,
                                    ) == s
                                })
                                .map(|(i, &h)| (i, h))
                                .collect();
                            let _ = to_shard[s].send(ToShard::Release {
                                op,
                                weight,
                                hops: mine,
                            });
                        }
                        let waiting = participants.len();
                        claims.insert(op, participants);
                        pending.insert(op, OpState::Releasing { waiting });
                    }
                    Dispatch::Repair { seed } => {
                        for (s, tx) in to_shard.iter().enumerate() {
                            claimed[s] = true;
                            let _ = tx.send(ToShard::Repair { op, seed });
                        }
                        claims.insert(op, (0..shards).collect());
                        pending.insert(
                            op,
                            OpState::Repairing {
                                waiting: shards,
                                damage: 0,
                                summary: RecoverySummary::default(),
                            },
                        );
                    }
                }
                dispatch += 1;
            }

            // Wait for the oldest in-flight operation specifically;
            // replies for younger operations advance their state
            // machines as they arrive (that is the pipelining).
            while !matches!(pending.get(&next), Some(OpState::Resolved(_))) {
                let Ok(reply) = reply_rx.recv() else {
                    // A worker can only disappear by panicking; the
                    // scope join below re-raises it.
                    return drain_report(planner, outcomes, ids, accepted, rejected, released);
                };
                apply_reply(reply, &mut pending, &to_shard);
            }

            // Finalize in trace order.
            if let Some(OpState::Resolved(res)) = pending.remove(&next) {
                for s in claims.remove(&next).unwrap_or_default() {
                    claimed[s] = false;
                }
                let start = dispatched_at.remove(&next).unwrap_or(next);
                rec.serve_batch_latency((next - start) as u64);
                outcomes.push(match res {
                    Resolution::Admitted {
                        rid,
                        sl,
                        weight,
                        hops,
                    } => {
                        accepted += 1;
                        rec.cac_admit(sl);
                        ids.insert(rid, LiveConn { rid, weight, hops });
                        TraceOutcome::Admitted { rid }
                    }
                    Resolution::Rejected(reason) => {
                        rejected += 1;
                        rec.cac_reject(reason.kind());
                        TraceOutcome::Rejected(reason)
                    }
                    Resolution::TornDown(torn) => {
                        if torn {
                            released += 1;
                            rec.cac_release();
                        }
                        TraceOutcome::TornDown(torn)
                    }
                    Resolution::Repaired { damage, summary } => {
                        // Repair invalidates the live handles (see
                        // TraceOp::Repair).
                        ids.clear();
                        TraceOutcome::Repaired { damage, summary }
                    }
                });
                rec.request_stage(
                    next as u32,
                    request_stage::FINALIZE,
                    0,
                    request_stage::NO_PATH,
                );
                // Drain-side queue sample: depth after this operation
                // left the pipeline (the dispatch-side twin is above).
                rec.serve_queue_depth((dispatch - next - 1) as u64);
                // One logical tick per finalized operation — the clock
                // the timeline aggregator windows over; the sequential
                // reference advances the same clock per applied op.
                rec.tick((next + 1) as u64);
            }
            next += 1;
        }

        // Collect every shard's partition and recorder.
        for tx in &to_shard {
            let _ = tx.send(ToShard::Finish);
        }
        let mut parts: Vec<Option<PortTables>> = (0..shards).map(|_| None).collect();
        let mut shard_requests: Vec<Vec<(u64, iba_obs::TraceEvent)>> = vec![Vec::new(); shards];
        let mut seen = 0;
        while seen < shards {
            let Ok(reply) = reply_rx.recv() else { break };
            if let FromShard::Finished {
                shard,
                tables,
                rec: worker_rec,
            } = reply
            {
                parts[shard] = Some(*tables);
                shard_requests[shard] = drain_request_records(&worker_rec);
                rec.merge(&worker_rec);
                seen += 1;
            }
        }
        let mut tables = base.empty_like();
        for t in parts.into_iter().flatten() {
            tables.absorb(t);
        }
        // Coordinator records first, then each shard's in shard order —
        // a deterministic concatenation regardless of reply arrival
        // order (the reassembler orders causally, not by position).
        let mut request_records = drain_request_records(rec);
        for sr in shard_requests {
            request_records.extend(sr);
        }
        ServeReport {
            outcomes,
            tables,
            accepted,
            rejected,
            released,
            live: ids.into_values().collect(),
            request_records,
        }
    })
}

/// Decides whether the next trace operation can be dispatched now and,
/// if so, what to send. Returns `None` when the operation must wait:
/// admissions wait for their shard set to be unclaimed; teardowns and
/// repairs wait for an empty pipeline (their correctness depends on
/// every earlier outcome being finalized).
fn plan_dispatch(
    op: &TraceOp,
    planner: &QosManager,
    shards: usize,
    in_flight: usize,
    claimed: &[bool],
    ids: &mut BTreeMap<u32, LiveConn>,
) -> Option<Dispatch> {
    match op {
        TraceOp::Admit(req) => match planner.plan_request(req) {
            Err(e) => Some(Dispatch::Local(Resolution::Rejected(e))),
            Ok(plan) => {
                let participants = participants_of(&plan.path, shards);
                if participants.iter().any(|&s| claimed[s]) {
                    return None;
                }
                Some(Dispatch::Admit {
                    rid: req.id,
                    spec: AdmitSpec {
                        sl: req.sl,
                        vl: plan.vl,
                        distance: plan.distance,
                        weight: plan.weight,
                    },
                    path: plan.path,
                    participants,
                })
            }
        },
        TraceOp::Teardown(rid) => {
            if in_flight > 0 {
                return None;
            }
            match ids.remove(rid) {
                None => Some(Dispatch::Local(Resolution::TornDown(false))),
                Some(conn) => {
                    let keys: Vec<PortKey> = conn
                        .hops
                        .iter()
                        .map(|h| PortKey {
                            node: h.node,
                            port: h.port,
                        })
                        .collect();
                    Some(Dispatch::Teardown {
                        weight: conn.weight,
                        hops: conn.hops,
                        participants: participants_of(&keys, shards),
                    })
                }
            }
        }
        TraceOp::Repair { seed } => {
            if in_flight > 0 {
                return None;
            }
            Some(Dispatch::Repair { seed: *seed })
        }
    }
}

/// Advances one operation's state machine with a shard reply,
/// launching the commit/abort phase when the last vote lands.
fn apply_reply(
    reply: FromShard,
    pending: &mut BTreeMap<usize, OpState>,
    to_shard: &[mpsc::SyncSender<ToShard>],
) {
    match reply {
        FromShard::Voted { op, votes: got } => {
            let Some(OpState::Voting {
                rid,
                spec,
                path,
                participants,
                waiting,
                votes,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            votes.extend(got);
            *waiting -= 1;
            if *waiting > 0 {
                return;
            }
            let fail_at = votes
                .iter()
                .filter(|(_, v)| v.is_err())
                .map(|&(i, _)| i)
                .min();
            let (rid, spec) = (*rid, *spec);
            match fail_at {
                None => {
                    // Unanimous yes: commit everywhere.
                    let waiting = participants.len();
                    for (s, tx) in to_shard.iter().enumerate() {
                        if !participants.contains(&s) {
                            continue;
                        }
                        let hops: Vec<(usize, PortKey)> = path
                            .iter()
                            .enumerate()
                            .filter(|&(_, k)| shard_of(*k, to_shard.len()) == s)
                            .map(|(i, &k)| (i, k))
                            .collect();
                        let _ = tx.send(ToShard::Commit { op, spec, hops });
                    }
                    pending.insert(
                        op,
                        OpState::Committing {
                            rid,
                            spec,
                            waiting,
                            hops: Vec::new(),
                        },
                    );
                }
                Some(k) => {
                    // First failing hop wins; every participant replays
                    // its slice of the sequential rollback.
                    let fail_key = path[k];
                    let waiting = participants.len();
                    for (s, tx) in to_shard.iter().enumerate() {
                        if !participants.contains(&s) {
                            continue;
                        }
                        let hops: Vec<(usize, PortKey)> = path
                            .iter()
                            .enumerate()
                            .filter(|&(_, key)| shard_of(*key, to_shard.len()) == s)
                            .map(|(i, &key)| (i, key))
                            .collect();
                        let _ = tx.send(ToShard::Abort {
                            op,
                            spec,
                            hops,
                            fail_at: k,
                        });
                    }
                    pending.insert(
                        op,
                        OpState::Aborting {
                            fail_key,
                            waiting,
                            error: None,
                        },
                    );
                }
            }
        }
        FromShard::Committed { op, hops: got } => {
            let Some(OpState::Committing {
                rid,
                spec,
                waiting,
                hops,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            hops.extend(got);
            *waiting -= 1;
            if *waiting > 0 {
                return;
            }
            hops.sort_unstable_by_key(|&(i, _)| i);
            let res = Resolution::Admitted {
                rid: *rid,
                sl: spec.sl.raw(),
                weight: spec.weight,
                hops: hops.iter().map(|&(_, h)| h).collect(),
            };
            pending.insert(op, OpState::Resolved(res));
        }
        FromShard::Aborted { op, error: got } => {
            let Some(OpState::Aborting {
                fail_key,
                waiting,
                error,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            if error.is_none() {
                *error = got;
            }
            *waiting -= 1;
            if *waiting > 0 {
                return;
            }
            let res = Resolution::Rejected(reject_for(*error, *fail_key));
            pending.insert(op, OpState::Resolved(res));
        }
        FromShard::Released { op } => {
            let Some(OpState::Releasing { waiting }) = pending.get_mut(&op) else {
                return;
            };
            *waiting -= 1;
            if *waiting == 0 {
                pending.insert(op, OpState::Resolved(Resolution::TornDown(true)));
            }
        }
        FromShard::Repaired {
            op,
            damage: got_damage,
            summary: got,
        } => {
            let Some(OpState::Repairing {
                waiting,
                damage,
                summary,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            *damage += got_damage;
            summary.tables += got.tables;
            summary.repaired += got.repaired;
            summary.evicted += got.evicted;
            summary.reinstalled += got.reinstalled;
            summary.lost += got.lost;
            *waiting -= 1;
            if *waiting == 0 {
                let res = Resolution::Repaired {
                    damage: *damage,
                    summary: *summary,
                };
                pending.insert(op, OpState::Resolved(res));
            }
        }
        FromShard::Finished { .. } => {}
    }
}

/// Fallback report when a worker disappeared mid-trace (its panic is
/// re-raised by the thread scope as soon as this returns).
fn drain_report(
    planner: &QosManager,
    outcomes: Vec<TraceOutcome>,
    ids: BTreeMap<u32, LiveConn>,
    accepted: u64,
    rejected: u64,
    released: u64,
) -> ServeReport {
    ServeReport {
        outcomes,
        tables: planner.port_tables().empty_like(),
        accepted,
        rejected,
        released,
        live: ids.into_values().collect(),
        request_records: Vec::new(),
    }
}

/// Filters a recorder's ring for the per-request causal records
/// (`TraceEvent::Request`), leaving every other kind in place.
fn drain_request_records(rec: &iba_obs::ObsRecorder) -> Vec<(u64, iba_obs::TraceEvent)> {
    rec.tracer
        .as_ref()
        .map(|t| {
            t.records()
                .into_iter()
                .filter(|(_, ev)| matches!(ev, iba_obs::TraceEvent::Request { .. }))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::SlTable;
    use iba_topo::{irregular, updown};

    fn planner(seed: u64) -> QosManager {
        let topo = irregular::generate(irregular::IrregularConfig::with_switches(4, seed));
        let routing = updown::compute(&topo);
        QosManager::new(topo, routing, SlTable::paper_table1())
    }

    #[test]
    fn trace_generation_is_seeded_and_mixed() {
        let cfg = TraceConfig::new(16, 7, 200);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same trace");
        let admits = a.iter().filter(|o| matches!(o, TraceOp::Admit(_))).count();
        let teardowns = a
            .iter()
            .filter(|o| matches!(o, TraceOp::Teardown(_)))
            .count();
        let repairs = a
            .iter()
            .filter(|o| matches!(o, TraceOp::Repair { .. }))
            .count();
        assert!(admits > 80, "{admits} admits");
        assert!(teardowns > 20, "{teardowns} teardowns");
        assert!(repairs > 3, "{repairs} repairs");
        let no_repair = generate_trace(&TraceConfig {
            repair_pct: 0,
            ..cfg
        });
        assert!(no_repair
            .iter()
            .all(|o| !matches!(o, TraceOp::Repair { .. })));
    }

    #[test]
    fn sharded_run_matches_sequential_on_one_trace() {
        let cfg = TraceConfig::new(16, 3, 96);
        let ops = generate_trace(&cfg);
        let mut seq_mgr = planner(0);
        let mut seq_rec = iba_obs::ObsRecorder::new();
        let seq = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        for shards in [1usize, 2, 8] {
            let p = planner(0);
            let mut rec = iba_obs::ObsRecorder::new();
            let report = run_trace(&p, &ops, shards, &mut rec);
            assert_eq!(report.outcomes, seq, "outcomes diverge at {shards} shards");
            assert_eq!(
                format!("{:?}", report.tables),
                format!("{:?}", seq_mgr.port_tables()),
                "tables diverge at {shards} shards"
            );
        }
    }

    #[test]
    fn request_records_cover_every_operation() {
        use iba_obs::{request_stage, RequestSpan};
        let cfg = TraceConfig::new(16, 5, 64);
        let ops = generate_trace(&cfg);
        let p = planner(0);
        let mut rec = iba_obs::ObsRecorder::with_tracer(1 << 16);
        let report = run_trace(&p, &ops, 4, &mut rec);

        let spans = iba_obs::reassemble(&report.request_records);
        assert_eq!(spans.len(), ops.len(), "one span per trace op");
        for (span, outcome) in spans.iter().zip(&report.outcomes) {
            let stages: Vec<u8> = span.stages.iter().map(|s| s.stage).collect();
            assert_eq!(stages[0], request_stage::DISPATCH, "rid {}", span.rid);
            assert_eq!(
                *stages.last().unwrap(),
                request_stage::FINALIZE,
                "rid {}",
                span.rid
            );
            match outcome {
                TraceOutcome::Admitted { .. } => {
                    assert!(
                        stages.contains(&request_stage::COMMIT),
                        "admitted rid {} has no commit stage",
                        span.rid
                    );
                    assert!(!span.aborted(), "admitted rid {} aborted", span.rid);
                }
                // Planner-local rejections never reach a shard, so an
                // abort stage is possible but not guaranteed here.
                TraceOutcome::Rejected(_) | TraceOutcome::TornDown(_) => {}
                TraceOutcome::Repaired { .. } => {}
            }
        }
        // At least one table-level rejection went through the
        // vote/abort protocol on this trace.
        assert!(
            spans.iter().any(RequestSpan::aborted),
            "trace exercised no abort path"
        );

        // The record stream is a pure function of the trace: same
        // trace, same shards, same records.
        let p2 = planner(0);
        let mut rec2 = iba_obs::ObsRecorder::with_tracer(1 << 16);
        let report2 = run_trace(&p2, &ops, 4, &mut rec2);
        assert_eq!(report.request_records, report2.request_records);
    }

    #[test]
    fn keyed_corruption_is_registry_independent() {
        // The same port must receive the same damage whether its table
        // sits alone in a registry or among others — the property that
        // makes shard-local repair match the sequential pass.
        let mk = |keys: &[PortKey]| {
            let mut pt = PortTables::new(0.8);
            for &k in keys {
                pt.admit_path(
                    &[k],
                    ServiceLevel::new(2).unwrap(),
                    VirtualLane::data(2),
                    Distance::D16,
                    40,
                )
                .ok();
            }
            pt
        };
        let a = PortKey {
            node: iba_sim::NodeId::Switch(0),
            port: 1,
        };
        let b = PortKey {
            node: iba_sim::NodeId::Switch(5),
            port: 3,
        };
        let mut both = mk(&[a, b]);
        let mut alone = mk(&[a]);
        corrupt_tables_keyed(&mut both, 42);
        corrupt_tables_keyed(&mut alone, 42);
        assert_eq!(
            format!("{:?}", both.table(a)),
            format!("{:?}", alone.table(a)),
        );
    }
}
