//! The sharded admission-control service: the paper's §5 CAC made
//! concurrent without a global lock — and without giving up the
//! workspace's byte-identical determinism contract.
//!
//! # Ownership
//!
//! [`PortTables`] is partitioned by output port: port `k` belongs to
//! shard `k.stable_code() % shards`, and each shard **exclusively
//! owns** its partition behind a bounded-channel worker thread. No
//! table is ever touched by two threads; there is no lock at all.
//!
//! # Batched multi-hop admission
//!
//! An admission must reserve every output port on the path or nothing
//! (the paper: "it is only accepted if there are available resources"
//! at each node). The coordinator runs a two-phase protocol per
//! request:
//!
//! 1. **Vote** — every participating shard answers, per hop, the exact
//!    error the real admission would return ([`HighPriorityTable::
//!    check_admit`] mirrors `admit`'s check order), without mutating.
//! 2. **Commit** — all hops voted yes: each shard reserves its hops in
//!    ascending canonical path order.
//! 3. **Abort** — some hop voted no: let `k` be the *first* failing
//!    path index. Shards replay exactly what the sequential
//!    transaction would have done: admit every owned hop before `k`,
//!    re-run the failing admission at `k` (it records the same
//!    allocator probes and fails the same way), then roll the
//!    reservations back in descending order. Hops after `k` are never
//!    touched. Because rollback releases can trigger defragmentation,
//!    this mutation-faithful replay — not a mere skip — is what keeps
//!    the final tables byte-identical to the single-owner
//!    [`QosManager`].
//!
//! # Determinism argument
//!
//! * Each table sees exactly the per-table operation sequence the
//!   sequential manager would apply, in the same order: the
//!   coordinator dispatches operations **strictly in trace order**,
//!   holds a shard claim for every in-flight operation, and never
//!   lets two in-flight operations share a shard. Outcomes and final
//!   table bytes are therefore independent of the shard count.
//! * Every random stream is a [`SplitMix64`] keyed by the owning
//!   port's [`PortKey::stable_code`], so repair randomness is
//!   identical no matter which shard (or how many shards) runs it.
//! * The coordinator's scheduling state (queue depth, dispatch tick)
//!   is a pure function of the trace and the shard count — worker
//!   reply timing cannot leak into any observable.
//!
//! The differential test (`tests/service_equivalence.rs`) proves the
//! claim on 100 random traces at 1, 2 and 8 shards.
//!
//! # Control-plane fault model
//!
//! [`run_trace_faulted`] layers a deterministic fault engine over the
//! protocol: a seeded [`ServeFaultPlan`] injects shard-worker crashes
//! (including between Vote and Commit), coordinator→shard message
//! loss and delay, and shard→coordinator reply loss. The service
//! survives every plan through three mechanisms:
//!
//! * a per-shard write-ahead [`IntentJournal`] (append intent before
//!   mutating, replay on supervised restart; the dangling tail intent
//!   is rolled forward deterministically);
//! * coordinator-side deterministic timeouts with the shared
//!   [`crate::retry::Backoff`] schedule plus idempotency keys
//!   (`(epoch, op)`), so a retried Commit that already landed is
//!   answered from the worker's reply cache instead of reserving
//!   twice;
//! * bounded-queue backpressure with a graceful-degradation ladder
//!   ([`ServeOptions`]): shed lowest-SL admissions first (rung 0),
//!   then fall back to [`Distance::looser`] installs (rung 1).
//!
//! Timeouts are *logical*: the engine owns the fault plan, so the
//! retry fires at a reproducible protocol point instead of a
//! wall-clock deadline — a faulted run is a pure function of (trace,
//! plan, shard count). Under any plan of the three fault kinds (with
//! the shedding ladder disabled) outcomes and final table bytes still
//! converge to the sequential reference at any shard count; only the
//! `serve_*` metrics record the turbulence.

use crate::cac::{PortKey, PortTables, RejectReason};
use crate::connection::{ConnectionId, HopReservation};
use crate::journal::{IntentJournal, JournalRecord, OpKey};
use crate::manager::QosManager;
use crate::recovery::{RecoveryManager, RecoverySummary};
use crate::retry::{Backoff, RetryPolicy};
use iba_core::{Distance, ServiceLevel, SplitMix64, TableError, VirtualLane, Weight};
use iba_traffic::ConnectionRequest;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::mpsc;

/// Domain-separation constant for trace generation.
const TRACE_SEED: u64 = 0x5E87_EACE_5EED;
/// Domain-separation constant for table corruption (the same one the
/// single-stream [`QosManager::corrupt_tables`] uses).
const CORRUPT_SEED: u64 = 0x07AB_1EC0_5EED;
/// Odd multiplier spreading a port's stable code into a sub-seed.
const KEY_SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;
/// Ring capacity of each shard worker's request tracer (16-byte
/// records; the ring keeps the newest protocol stages when a long
/// trace overflows it).
const WORKER_TRACE_CAP: usize = 16384;
/// Domain-separation constant for control-plane fault plans.
const SERVE_FAULT_SEED: u64 = 0xC0DE_FA17_5EED;

/// One operation of a request trace, addressed by request id (`rid`).
#[derive(Clone, Debug)]
pub enum TraceOp {
    /// Admit a connection (the request's `id` is the trace `rid`).
    Admit(ConnectionRequest),
    /// Tear down the connection admitted under this `rid` (a no-op
    /// outcome when it was rejected, already torn down, or unknown).
    Teardown(u32),
    /// Damage every table with seed-keyed corruption, then repair all
    /// of them (the chaos drill as a trace citizen).
    ///
    /// Repair evicts and re-admits sequences under fresh ids, so the
    /// hop reservations of connections admitted earlier go stale — a
    /// stale release could alias a rebuilt sequence. A repair
    /// therefore **invalidates every live connection handle**:
    /// tearing one down afterwards reports `TornDown(false)`.
    Repair {
        /// Seed for both the corruption and the repair streams.
        seed: u64,
    },
}

/// The outcome of one trace operation — the unit of the differential
/// test: a sharded run must produce the exact same outcome vector as
/// the sequential manager.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceOutcome {
    /// The connection was admitted end to end.
    Admitted {
        /// The request id now live.
        rid: u32,
    },
    /// The request was rejected (with the failing hop where the
    /// reason has one).
    Rejected(RejectReason),
    /// Teardown result: `true` when a live connection was released.
    TornDown(bool),
    /// Corruption + repair pass over every table.
    Repaired {
        /// Damage operations injected before the repair.
        damage: usize,
        /// Aggregated repair summary across all tables.
        summary: RecoverySummary,
    },
}

/// Parameters of [`generate_trace`].
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Hosts addressable by generated requests (`src`/`dst < hosts`).
    pub hosts: u16,
    /// Operations to generate.
    pub len: usize,
    /// Seed of the trace stream.
    pub seed: u64,
    /// Percentage of operations that are corrupt+repair drills
    /// (0 disables them — required by the strict weight-conservation
    /// invariant, which repair evictions legitimately break).
    pub repair_pct: u8,
}

impl TraceConfig {
    /// The standard admit-heavy mix: ~60% admits (loaded enough to
    /// force mid-path rejections and rollbacks), ~32% teardowns of
    /// earlier requests, 8% repair drills.
    #[must_use]
    pub fn new(hosts: u16, seed: u64, len: usize) -> Self {
        TraceConfig {
            hosts,
            len,
            seed,
            repair_pct: 8,
        }
    }
}

/// Generates a seeded admit/teardown/repair trace. Request ids are the
/// operation indices, so every `rid` is unique and teardowns of
/// rejected or double-torn requests occur naturally.
#[must_use]
pub fn generate_trace(cfg: &TraceConfig) -> Vec<TraceOp> {
    let mut rng = SplitMix64::seed_from_u64(cfg.seed ^ TRACE_SEED);
    let hosts = cfg.hosts.max(2);
    let mut ops = Vec::with_capacity(cfg.len);
    for i in 0..cfg.len {
        let roll = rng.next_u64() % 100;
        let repair_band = u64::from(cfg.repair_pct.min(100));
        let teardown_band = repair_band + 32;
        if i > 0 && roll < repair_band {
            ops.push(TraceOp::Repair {
                seed: rng.next_u64(),
            });
        } else if i > 0 && roll < teardown_band {
            ops.push(TraceOp::Teardown((rng.next_u64() % i as u64) as u32));
        } else {
            let src = (rng.next_u64() % u64::from(hosts)) as u16;
            let dst = ((u64::from(src) + 1 + rng.next_u64() % u64::from(hosts - 1))
                % u64::from(hosts)) as u16;
            let distance = match rng.next_u64() % 4 {
                0 => Distance::D8,
                1 => Distance::D16,
                2 => Distance::D32,
                _ => Distance::D64,
            };
            // Large enough that a handful of connections saturate a
            // port (forcing mid-path rejections), small enough that
            // plenty are admitted.
            let mean_bw_mbps = (1 + rng.next_u64() % 50) as f64 * 10.0;
            // `% 13` keeps the id in the paper's 13 QoS SLs, so the
            // constructor cannot fail; the else arm is unreachable.
            if let Some(sl) = ServiceLevel::new((rng.next_u64() % 13) as u8) {
                ops.push(TraceOp::Admit(ConnectionRequest {
                    id: i as u32,
                    src: iba_topo::HostId(src),
                    dst: iba_topo::HostId(dst),
                    sl,
                    distance,
                    mean_bw_mbps,
                    packet_bytes: 256,
                }));
            } else {
                ops.push(TraceOp::Teardown(0));
            }
        }
    }
    ops
}

/// Per-table sub-seed for a port's corruption/repair streams: the
/// trace seed spread by the port's stable code, so the stream is a
/// property of the *table*, not of whichever shard happens to own it.
fn keyed_seed(seed: u64, key: PortKey) -> u64 {
    seed ^ key.stable_code().wrapping_mul(KEY_SPREAD)
}

/// Deterministically corrupts every touched table of a registry, each
/// with its own [`SplitMix64`] stream keyed by the port's stable code.
/// Returns the number of damage operations applied.
///
/// Unlike [`QosManager::corrupt_tables`] (one stream walked across all
/// tables in key order) the per-table keying makes the damage
/// independent of which other tables sit in the same registry — the
/// property that lets shards corrupt their partitions in isolation and
/// still match a sequential pass over the whole registry.
pub fn corrupt_tables_keyed(tables: &mut PortTables, seed: u64) -> usize {
    let mut ops = 0;
    for key in tables.sorted_keys() {
        let mut rng = SplitMix64::seed_from_u64(keyed_seed(seed ^ CORRUPT_SEED, key));
        if let Some(t) = tables.get_table_mut(key) {
            ops += t.inject_corruption(&mut rng);
        }
    }
    ops
}

/// Repairs every touched table of a registry with a fresh
/// [`RecoveryManager`] per table, seeded by the port's stable code —
/// the shard-invariant counterpart of
/// [`QosManager::repair_tables`]. Returns the field-wise sum of the
/// per-table summaries.
pub fn repair_tables_keyed(
    tables: &mut PortTables,
    seed: u64,
    rec: &mut dyn iba_obs::Recorder,
) -> RecoverySummary {
    let mut total = RecoverySummary::default();
    for key in tables.sorted_keys() {
        let mut recovery = RecoveryManager::new(keyed_seed(seed, key));
        if let Some(t) = tables.get_table_mut(key) {
            let s = recovery.repair_table(t, rec);
            total.tables += s.tables;
            total.repaired += s.repaired;
            total.evicted += s.evicted;
            total.reinstalled += s.reinstalled;
            total.lost += s.lost;
        }
    }
    total
}

/// Applies a trace to the single-owner [`QosManager`] — the reference
/// the sharded service is differentially tested against. Teardowns
/// address requests by `rid` through a private map, so a double
/// teardown can never hit a recycled connection slot.
pub fn apply_trace_sequential(
    mgr: &mut QosManager,
    ops: &[TraceOp],
    rec: &mut dyn iba_obs::Recorder,
) -> Vec<TraceOutcome> {
    let mut ids: BTreeMap<u32, ConnectionId> = BTreeMap::new();
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let outcome = match op {
                TraceOp::Admit(req) => match mgr.request_observed(req, rec) {
                    Ok(id) => {
                        ids.insert(req.id, id);
                        TraceOutcome::Admitted { rid: req.id }
                    }
                    Err(e) => TraceOutcome::Rejected(e),
                },
                TraceOp::Teardown(rid) => {
                    let torn = ids
                        .remove(rid)
                        .map(|id| mgr.teardown_observed(id, rec))
                        .unwrap_or(false);
                    TraceOutcome::TornDown(torn)
                }
                TraceOp::Repair { seed } => {
                    let damage = corrupt_tables_keyed(mgr.tables_mut(), *seed);
                    let summary = repair_tables_keyed(mgr.tables_mut(), *seed, rec);
                    // Repair invalidates the live handles (see TraceOp).
                    ids.clear();
                    TraceOutcome::Repaired { damage, summary }
                }
            };
            // One logical tick per applied op — the same clock the
            // sharded coordinator advances per finalized op, so a
            // timeline attached to either recorder windows identically.
            rec.tick((i + 1) as u64);
            outcome
        })
        .collect()
}

/// A connection still live when the trace ended (weight-conservation
/// audits sum `weight × hops` over these).
#[derive(Clone, Debug)]
pub struct LiveConn {
    /// The request id.
    pub rid: u32,
    /// Per-hop reserved weight.
    pub weight: Weight,
    /// Per-hop reservations, source-side first.
    pub hops: Vec<HopReservation>,
}

/// What a sharded trace run produced.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-operation outcomes, in trace order.
    pub outcomes: Vec<TraceOutcome>,
    /// The reassembled port tables (union of all shard partitions).
    pub tables: PortTables,
    /// Admitted requests.
    pub accepted: u64,
    /// Rejected requests (planner and table rejections).
    pub rejected: u64,
    /// Live connections released by teardowns.
    pub released: u64,
    /// Connections still live at the end, in `rid` order.
    pub live: Vec<LiveConn>,
    /// Per-request causal trace records (`TraceEvent::Request` only),
    /// drained from the coordinator's ring first and then each
    /// shard's in shard order — a deterministic input for
    /// `iba_obs::request::reassemble`. Empty when the coordinator's
    /// recorder carries no tracer.
    pub request_records: Vec<(u64, iba_obs::TraceEvent)>,
    /// Each shard's write-ahead intent journal (indexed by shard), as
    /// returned at shutdown — the exactly-once ledger's raw material.
    /// Empty when a worker died mid-trace.
    pub journals: Vec<IntentJournal>,
    /// What the fault engine injected and survived (all zeros on an
    /// unfaulted run).
    pub fault_stats: FaultStats,
}

/// The shard owning an output port: a pure function of the port's
/// stable code, independent of process, registry contents and trace.
#[must_use]
pub fn shard_of(key: PortKey, shards: usize) -> usize {
    (key.stable_code() % shards.max(1) as u64) as usize
}

/// Everything a shard needs to evaluate one admission hop. Public so
/// the [`IntentJournal`] can record commit/abort intents verbatim.
#[derive(Clone, Copy, Debug)]
pub struct AdmitSpec {
    /// Service level of the request.
    pub sl: ServiceLevel,
    /// Virtual lane the SL maps to.
    pub vl: VirtualLane,
    /// Contracted inter-service distance.
    pub distance: Distance,
    /// Per-hop reserved weight.
    pub weight: Weight,
}

#[cfg(test)]
impl AdmitSpec {
    pub(crate) fn test_default() -> Self {
        AdmitSpec {
            sl: ServiceLevel::new(0).unwrap(),
            vl: VirtualLane::data(0),
            distance: Distance::D16,
            weight: 10,
        }
    }
}

/// One hop's vote: path index and the exact admission result.
type HopVote = (usize, Result<(), TableError>);

/// The protocol phase a control-plane fault attaches to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolPhase {
    /// The non-mutating per-hop vote.
    Vote,
    /// The commit batch (reserve every owned hop).
    Commit,
    /// The mutation-faithful rollback replay.
    Abort,
    /// A teardown's release batch.
    Release,
    /// The corrupt-and-repair drill.
    Repair,
}

impl ProtocolPhase {
    /// Stable code, used in idempotency-cache and dedup keys.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            ProtocolPhase::Vote => 0,
            ProtocolPhase::Commit => 1,
            ProtocolPhase::Abort => 2,
            ProtocolPhase::Release => 3,
            ProtocolPhase::Repair => 4,
        }
    }
}

/// Where inside a message's processing the worker crashes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrashPoint {
    /// After journaling the intent, before any table mutation.
    BeforeAct,
    /// Mid-batch: after the first hop's mutation, before the rest.
    MidBatch,
    /// After every mutation and the journal's done marker, before the
    /// reply is sent (the reply is lost with the worker).
    BeforeReply,
}

/// The kind of control-plane fault to inject.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServeFaultKind {
    /// The worker processing the message crashes at the given point
    /// and is supervised-restarted (journal replay), losing its
    /// volatile state and the pending reply.
    Crash(CrashPoint),
    /// The coordinator→shard message is lost in flight; the
    /// deterministic timeout fires and the coordinator re-sends.
    MsgLoss,
    /// The message is delayed past the timeout: the retry *and* the
    /// late original are both delivered (duplicate delivery), which
    /// exercises the worker-side idempotency cache.
    MsgDelay,
    /// The shard→coordinator reply is lost; the timeout fires and the
    /// retried message is answered from the reply cache.
    ReplyLoss,
}

/// One scheduled fault: applies to the first delivery of the given
/// phase of trace operation `op`, on the lowest participating shard
/// (a pure function of the trace, so the set of *consumed* faults is
/// identical at any shard count).
#[derive(Clone, Copy, Debug)]
pub struct ServeFault {
    /// Trace operation index the fault targets.
    pub op: u32,
    /// Protocol phase it fires in (unconsumed if the op never reaches
    /// that phase — e.g. a Commit fault on a rejected admission).
    pub phase: ProtocolPhase,
    /// What happens.
    pub kind: ServeFaultKind,
}

/// A seeded, deterministic control-plane fault plan.
#[derive(Clone, Debug, Default)]
pub struct ServeFaultPlan {
    /// Seed the plan was generated from (also seeds the coordinator's
    /// retry-backoff jitter).
    pub seed: u64,
    /// Scheduled faults, in generation order.
    pub faults: Vec<ServeFault>,
}

impl ServeFaultPlan {
    /// The empty plan: [`run_trace_faulted`] degenerates to
    /// [`run_trace`].
    #[must_use]
    pub fn none() -> Self {
        ServeFaultPlan::default()
    }

    /// Generates a plan over a trace: each operation draws one fault
    /// with probability `intensity_pct`%, uniformly across the fault
    /// kinds and across the phases its op type can reach.
    #[must_use]
    pub fn generate(seed: u64, ops: &[TraceOp], intensity_pct: u8) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ SERVE_FAULT_SEED);
        let mut faults = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let roll = rng.next_u64() % 100;
            let phase_draw = rng.next_u64();
            let kind_draw = rng.next_u64();
            if roll >= u64::from(intensity_pct.min(100)) {
                continue;
            }
            let phase = match op {
                TraceOp::Admit(_) => match phase_draw % 3 {
                    0 => ProtocolPhase::Vote,
                    1 => ProtocolPhase::Commit,
                    _ => ProtocolPhase::Abort,
                },
                TraceOp::Teardown(_) => ProtocolPhase::Release,
                TraceOp::Repair { .. } => ProtocolPhase::Repair,
            };
            let kind = match kind_draw % 6 {
                0 => ServeFaultKind::Crash(CrashPoint::BeforeAct),
                1 => ServeFaultKind::Crash(CrashPoint::MidBatch),
                2 => ServeFaultKind::Crash(CrashPoint::BeforeReply),
                3 => ServeFaultKind::MsgLoss,
                4 => ServeFaultKind::MsgDelay,
                _ => ServeFaultKind::ReplyLoss,
            };
            faults.push(ServeFault {
                op: i as u32,
                phase,
                kind,
            });
        }
        ServeFaultPlan { seed, faults }
    }

    /// Threads the control-plane fault kinds of a data-plane fault
    /// calendar ([`iba_sim::fault::FaultPlan`]) into a serve plan:
    /// `ServeCrash`/`ServeVoteLoss`/`ServeReplyLoss` events map to
    /// crashes, vote loss/delay and reply loss (phase and crash point
    /// derived deterministically from the op index); data-plane events
    /// pass through untouched to whoever drives the simulator.
    #[must_use]
    pub fn from_calendar(plan: &iba_sim::fault::FaultPlan) -> Self {
        let mut faults = Vec::new();
        for (_, action) in &plan.events {
            match *action {
                iba_sim::fault::FaultAction::ServeCrash { op } => {
                    let phase = if op % 2 == 0 {
                        ProtocolPhase::Vote
                    } else {
                        ProtocolPhase::Commit
                    };
                    let point = match op % 3 {
                        0 => CrashPoint::BeforeAct,
                        1 => CrashPoint::MidBatch,
                        _ => CrashPoint::BeforeReply,
                    };
                    faults.push(ServeFault {
                        op,
                        phase,
                        kind: ServeFaultKind::Crash(point),
                    });
                }
                iba_sim::fault::FaultAction::ServeVoteLoss { op } => {
                    let kind = if op % 2 == 0 {
                        ServeFaultKind::MsgLoss
                    } else {
                        ServeFaultKind::MsgDelay
                    };
                    faults.push(ServeFault {
                        op,
                        phase: ProtocolPhase::Vote,
                        kind,
                    });
                }
                iba_sim::fault::FaultAction::ServeReplyLoss { op } => {
                    let phase = if op % 2 == 0 {
                        ProtocolPhase::Vote
                    } else {
                        ProtocolPhase::Commit
                    };
                    faults.push(ServeFault {
                        op,
                        phase,
                        kind: ServeFaultKind::ReplyLoss,
                    });
                }
                _ => {}
            }
        }
        ServeFaultPlan {
            seed: plan.seed,
            faults,
        }
    }

    /// True when the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Fault-tolerance knobs of [`run_trace_faulted`]. The defaults make
/// the faulted engine behave exactly like [`run_trace`]: journal on,
/// queue unbounded, shedding ladder off.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Retain the write-ahead journal (disable only as the negative
    /// control: a crashed worker then restarts from an empty
    /// partition and every earlier reservation on it is lost).
    pub journal: bool,
    /// Bound on in-flight (dispatched, unfinalized) operations; the
    /// dispatcher backpressures at the bound.
    pub queue_capacity: usize,
    /// Enable the graceful-degradation ladder when the queue is full:
    /// rung 0 sheds admissions below [`ServeOptions::shed_sl_floor`],
    /// rung 1 installs the rest at one [`Distance::looser`] step.
    /// Shedding intentionally diverges from the sequential reference
    /// (requests are refused that it would admit), so differential
    /// audits run with the ladder off.
    pub shed_ladder: bool,
    /// SLs strictly below this are shed first (rung 0).
    pub shed_sl_floor: u8,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            journal: true,
            queue_capacity: usize::MAX,
            shed_ladder: false,
            shed_sl_floor: 4,
        }
    }
}

/// What the fault engine actually injected and survived — all counts
/// are of *consumed* faults, a pure function of the trace and plan
/// (identical at any shard count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker crashes injected (each one forced a journal replay).
    pub crashes: u64,
    /// Coordinator→shard messages lost.
    pub msg_losses: u64,
    /// Messages delayed past the timeout (duplicate deliveries).
    pub msg_delays: u64,
    /// Shard→coordinator replies lost.
    pub reply_losses: u64,
    /// Deterministic timeouts fired (= retries sent).
    pub timeouts: u64,
    /// Shedding-ladder actions per rung: `[shed lowest-SL, degraded
    /// install]`.
    pub shed: [u64; 2],
}

/// Coordinator → shard messages. `hops` carry `(path index, key)` in
/// ascending path order — the canonical reservation order.
#[derive(Clone)]
enum ToShard {
    Vote {
        op: usize,
        spec: AdmitSpec,
        hops: Vec<(usize, PortKey)>,
    },
    Commit {
        op: usize,
        spec: AdmitSpec,
        hops: Vec<(usize, PortKey)>,
    },
    Abort {
        op: usize,
        spec: AdmitSpec,
        hops: Vec<(usize, PortKey)>,
        fail_at: usize,
    },
    Release {
        op: usize,
        weight: Weight,
        hops: Vec<(usize, HopReservation)>,
    },
    Repair {
        op: usize,
        seed: u64,
    },
    Finish,
}

impl ToShard {
    /// The protocol phase this message drives (`None` for `Finish`).
    fn phase(&self) -> Option<ProtocolPhase> {
        match self {
            ToShard::Vote { .. } => Some(ProtocolPhase::Vote),
            ToShard::Commit { .. } => Some(ProtocolPhase::Commit),
            ToShard::Abort { .. } => Some(ProtocolPhase::Abort),
            ToShard::Release { .. } => Some(ProtocolPhase::Release),
            ToShard::Repair { .. } => Some(ProtocolPhase::Repair),
            ToShard::Finish => None,
        }
    }
}

/// The wire envelope: the fault engine sits on this layer. `crash`
/// carries a scripted worker crash for this delivery (`None` on the
/// unfaulted path and on every retry); `epoch` is the idempotency-key
/// epoch the coordinator stamped at dispatch.
struct Envelope {
    epoch: u32,
    crash: Option<CrashPoint>,
    msg: ToShard,
}

impl Envelope {
    fn clean(epoch: u32, msg: ToShard) -> Self {
        Envelope {
            epoch,
            crash: None,
            msg,
        }
    }
}

/// Shard → coordinator replies. `from` names the replying shard so the
/// fault engine can attribute replies (the state machines ignore it).
enum FromShard {
    Voted {
        op: usize,
        from: usize,
        votes: Vec<HopVote>,
    },
    Committed {
        op: usize,
        from: usize,
        hops: Vec<(usize, HopReservation)>,
    },
    Aborted {
        op: usize,
        from: usize,
        error: Option<TableError>,
    },
    Released {
        op: usize,
        from: usize,
    },
    Repaired {
        op: usize,
        from: usize,
        damage: usize,
        summary: RecoverySummary,
    },
    Finished {
        shard: usize,
        tables: Box<PortTables>,
        rec: Box<iba_obs::ObsRecorder>,
        journal: Box<IntentJournal>,
    },
}

/// A cached reply payload, keyed by `(OpKey, phase code)` — the
/// idempotency cache. Rebuilt from the journal on restart, so a retry
/// whose original landed before a crash is still answered without
/// re-execution.
#[derive(Clone)]
enum CachedReply {
    Voted(Vec<HopVote>),
    Committed(Vec<(usize, HopReservation)>),
    Aborted(Option<TableError>),
    Released,
    Repaired {
        damage: usize,
        summary: RecoverySummary,
    },
}

impl CachedReply {
    /// Reconstructs the wire reply for a retried message.
    fn to_reply(&self, op: usize, from: usize) -> FromShard {
        match self {
            CachedReply::Voted(votes) => FromShard::Voted {
                op,
                from,
                votes: votes.clone(),
            },
            CachedReply::Committed(hops) => FromShard::Committed {
                op,
                from,
                hops: hops.clone(),
            },
            CachedReply::Aborted(error) => FromShard::Aborted {
                op,
                from,
                error: *error,
            },
            CachedReply::Released => FromShard::Released { op, from },
            CachedReply::Repaired { damage, summary } => FromShard::Repaired {
                op,
                from,
                damage: *damage,
                summary: *summary,
            },
        }
    }
}

/// Coordinator-side state of one dispatched, unfinalized operation.
enum OpState {
    /// Outcome known; waiting for its in-order finalize turn.
    Resolved(Resolution),
    /// Admission: waiting for `waiting` shards' votes.
    Voting {
        rid: u32,
        spec: AdmitSpec,
        path: Vec<PortKey>,
        participants: Vec<usize>,
        waiting: usize,
        votes: Vec<HopVote>,
    },
    /// Admission: all votes yes, waiting for shard commits.
    Committing {
        rid: u32,
        spec: AdmitSpec,
        waiting: usize,
        hops: Vec<(usize, HopReservation)>,
    },
    /// Admission: vote failed at `fail_key`, shards rolling back.
    Aborting {
        fail_key: PortKey,
        waiting: usize,
        error: Option<TableError>,
    },
    /// Teardown: waiting for shard releases.
    Releasing { waiting: usize },
    /// Repair drill: waiting for every shard's pass.
    Repairing {
        waiting: usize,
        damage: usize,
        summary: RecoverySummary,
    },
}

/// A resolved operation, ready to finalize.
enum Resolution {
    Admitted {
        rid: u32,
        sl: u8,
        weight: Weight,
        hops: Vec<HopReservation>,
    },
    Rejected(RejectReason),
    TornDown(bool),
    Repaired {
        damage: usize,
        summary: RecoverySummary,
    },
}

fn reject_for(error: Option<TableError>, key: PortKey) -> RejectReason {
    match error {
        Some(TableError::NoFreeSequence) => RejectReason::NoFreeSequence(key),
        Some(TableError::CapacityExceeded) => RejectReason::CapacityExceeded(key),
        Some(TableError::RequestTooLarge) => RejectReason::RequestTooLarge,
        _ => RejectReason::InvalidRequest,
    }
}

/// The volatile half of a shard worker — exactly what a crash
/// destroys. The journal and the recorder live outside it: the
/// journal is the durable WAL, the recorder models the external
/// observability backplane.
struct ShardVolatile {
    tables: PortTables,
    cache: BTreeMap<(OpKey, u8), CachedReply>,
}

/// Reserves every hop of a commit batch in ascending path order.
/// `live` meters the protocol counters and stage events; journal
/// replay re-applies the mutations without re-counting protocol
/// actions (allocator-level metering inside `admit_at` still runs).
fn apply_commit(
    tables: &mut PortTables,
    op: usize,
    spec: AdmitSpec,
    hops: &[(usize, PortKey)],
    rec: &mut iba_obs::ObsRecorder,
    lane: u8,
    live: bool,
) -> Vec<(usize, HopReservation)> {
    use iba_obs::{request_stage, Recorder};
    let mut done = Vec::with_capacity(hops.len());
    for &(i, k) in hops {
        if let Ok(h) = tables.admit_at(k, spec.sl, spec.vl, spec.distance, spec.weight, rec) {
            if live {
                rec.serve_shard_admit(lane);
                rec.request_stage(op as u32, request_stage::COMMIT, lane, i as u8);
            }
            done.push((i, h));
        }
    }
    done
}

/// The mutation-faithful rollback replay (see module docs): admit the
/// owned hops below the failing index, re-run the failing admission,
/// then roll back in descending path order.
#[allow(clippy::too_many_arguments)] // internal protocol plumbing; a struct would just rename the args
fn apply_abort(
    tables: &mut PortTables,
    spec: AdmitSpec,
    hops: &[(usize, PortKey)],
    fail_at: usize,
    rec: &mut iba_obs::ObsRecorder,
    lane: u8,
    shard: usize,
    live: bool,
) -> Option<TableError> {
    use iba_obs::Recorder;
    let mut done: Vec<(usize, HopReservation)> = Vec::new();
    for &(i, k) in hops.iter().filter(|&&(i, _)| i < fail_at) {
        if let Ok(h) = tables.admit_at(k, spec.sl, spec.vl, spec.distance, spec.weight, rec) {
            done.push((i, h));
        }
    }
    assert!(
        done.len() == hops.iter().filter(|&&(i, _)| i < fail_at).count(),
        "vote/rollback divergence on shard {shard}"
    );
    // Replay the failing admission (recording the same allocator
    // probes the sequential path records)...
    let mut error = None;
    if let Some(&(_, k)) = hops.iter().find(|&&(i, _)| i == fail_at) {
        match tables.admit_at(k, spec.sl, spec.vl, spec.distance, spec.weight, rec) {
            Err(e) => {
                error = Some(e);
                if live {
                    rec.serve_shard_reject(lane);
                }
            }
            Ok(h) => {
                // Undo the stray reservation before the invariant
                // below reports the divergence.
                let _ = tables.release_hop(h, spec.weight);
            }
        }
        assert!(
            error.is_some(),
            "aborted hop admitted despite a failing vote on shard {shard}"
        );
    }
    // ...then roll back in descending path order, exactly like the
    // sequential transaction.
    if live && !done.is_empty() {
        rec.serve_shard_rollback(lane);
    }
    for &(_, h) in done.iter().rev() {
        let _ = tables.release_hop(h, spec.weight);
    }
    error
}

/// Releases a teardown's hops in descending path order, mirroring
/// `release_path`. A failed hop (evicted by an earlier repair) is
/// absorbed exactly like the sequential teardown does.
fn apply_release(tables: &mut PortTables, weight: Weight, hops: &[(usize, HopReservation)]) {
    for &(_, h) in hops.iter().rev() {
        let _ = tables.release_hop(h, weight);
    }
}

/// The corrupt-and-repair drill over one partition.
fn apply_repair(
    tables: &mut PortTables,
    seed: u64,
    rec: &mut iba_obs::ObsRecorder,
) -> (usize, RecoverySummary) {
    let damage = corrupt_tables_keyed(tables, seed);
    let summary = repair_tables_keyed(tables, seed, rec);
    (damage, summary)
}

/// Re-applies one journaled intent against the rebuilding partition,
/// rebuilds its cached reply, and returns the done marker that closes
/// it (used when rolling the dangling tail forward).
fn replay_intent(
    tables: &mut PortTables,
    intent: &JournalRecord,
    cache: &mut BTreeMap<(OpKey, u8), CachedReply>,
    rec: &mut iba_obs::ObsRecorder,
    shard: usize,
) -> Option<JournalRecord> {
    let lane = shard as u8;
    match intent {
        JournalRecord::CommitIntent { key, spec, hops } => {
            let done = apply_commit(tables, key.1 as usize, *spec, hops, rec, lane, false);
            assert!(
                done.len() == hops.len(),
                "journal replay commit divergence on shard {shard}"
            );
            cache.insert(
                (*key, ProtocolPhase::Commit.code()),
                CachedReply::Committed(done),
            );
            Some(JournalRecord::CommitDone { key: *key })
        }
        JournalRecord::AbortIntent {
            key,
            spec,
            hops,
            fail_at,
        } => {
            let error = apply_abort(tables, *spec, hops, *fail_at, rec, lane, shard, false);
            cache.insert(
                (*key, ProtocolPhase::Abort.code()),
                CachedReply::Aborted(error),
            );
            Some(JournalRecord::AbortDone { key: *key })
        }
        JournalRecord::ReleaseIntent { key, weight, hops } => {
            apply_release(tables, *weight, hops);
            cache.insert((*key, ProtocolPhase::Release.code()), CachedReply::Released);
            Some(JournalRecord::ReleaseDone { key: *key })
        }
        JournalRecord::RepairIntent { key, seed } => {
            let (damage, summary) = apply_repair(tables, *seed, rec);
            cache.insert(
                (*key, ProtocolPhase::Repair.code()),
                CachedReply::Repaired { damage, summary },
            );
            Some(JournalRecord::RepairDone { key: *key })
        }
        _ => None,
    }
}

/// Supervised-restart recovery: rebuilds the partition and the reply
/// cache by replaying the journal against a fresh empty partition.
/// Completed intent/done pairs are re-applied in order; the dangling
/// tail intent (the transaction the crash interrupted) is rolled
/// forward and closed in the journal. Every table mutation is
/// deterministic, so the rebuilt partition is byte-identical to the
/// crash-free one.
fn rebuild_from_journal(
    shard: usize,
    base: &PortTables,
    journal: &mut IntentJournal,
    rec: &mut iba_obs::ObsRecorder,
) -> ShardVolatile {
    let mut tables = base.empty_like();
    let mut cache: BTreeMap<(OpKey, u8), CachedReply> = BTreeMap::new();
    let records: Vec<JournalRecord> = journal.records().to_vec();
    let mut open: Option<JournalRecord> = None;
    for r in &records {
        match r {
            JournalRecord::Voted { key, votes } => {
                cache.insert(
                    (*key, ProtocolPhase::Vote.code()),
                    CachedReply::Voted(votes.clone()),
                );
            }
            JournalRecord::CommitIntent { .. }
            | JournalRecord::AbortIntent { .. }
            | JournalRecord::ReleaseIntent { .. }
            | JournalRecord::RepairIntent { .. } => {
                open = Some(r.clone());
            }
            JournalRecord::CommitDone { .. }
            | JournalRecord::AbortDone { .. }
            | JournalRecord::ReleaseDone { .. }
            | JournalRecord::RepairDone { .. } => {
                if let Some(intent) = open.take() {
                    let _ = replay_intent(&mut tables, &intent, &mut cache, rec, shard);
                }
            }
        }
    }
    if let Some(intent) = open.take() {
        // Roll the interrupted transaction forward and close it.
        if let Some(done) = replay_intent(&mut tables, &intent, &mut cache, rec, shard) {
            journal.append(done);
        }
    }
    ShardVolatile { tables, cache }
}

/// A scripted crash at `point`: discard the volatile state and run the
/// supervised restart. The reply the coordinator was waiting for is
/// lost with the worker — the engine's deterministic timeout retries.
fn crash_restart(
    shard: usize,
    base: &PortTables,
    vol: &mut ShardVolatile,
    journal: &mut IntentJournal,
    rec: &mut iba_obs::ObsRecorder,
) {
    use iba_obs::Recorder;
    let lane = shard as u8;
    rec.serve_crash(lane);
    *vol = rebuild_from_journal(shard, base, journal, rec);
    rec.serve_journal_replay(lane, journal.len() as u64);
}

/// Executes one protocol message on a shard, honoring the envelope's
/// scripted crash point and the idempotency cache.
fn handle_message(
    shard: usize,
    base: &PortTables,
    env: Envelope,
    vol: &mut ShardVolatile,
    journal: &mut IntentJournal,
    rec: &mut iba_obs::ObsRecorder,
    tx: &mpsc::Sender<FromShard>,
) {
    use iba_obs::{request_stage, Recorder};
    let lane = shard as u8;
    let (op, phase) = match (&env.msg, env.msg.phase()) {
        (
            ToShard::Vote { op, .. }
            | ToShard::Commit { op, .. }
            | ToShard::Abort { op, .. }
            | ToShard::Release { op, .. }
            | ToShard::Repair { op, .. },
            Some(phase),
        ) => (*op, phase),
        _ => return,
    };
    let key: OpKey = (env.epoch, op as u32);
    rec.tick(op as u64);
    // Idempotent retry: a re-delivered message whose transaction
    // already completed is answered from the cache — never
    // re-executed, so a retried Commit cannot double-reserve.
    if let Some(cached) = vol.cache.get(&(key, phase.code())) {
        let _ = tx.send(cached.to_reply(op, shard));
        return;
    }
    match env.msg {
        ToShard::Vote { op, spec, hops } => {
            match env.crash {
                Some(CrashPoint::BeforeAct) => {
                    crash_restart(shard, base, vol, journal, rec);
                    return;
                }
                Some(CrashPoint::MidBatch) => {
                    // Probe the first hop, then go down mid-batch.
                    if let Some(&(i, k)) = hops.first() {
                        rec.request_stage(op as u32, request_stage::VOTE, lane, i as u8);
                        let _ = vol
                            .tables
                            .probe_admit(k, spec.sl, spec.distance, spec.weight);
                    }
                    crash_restart(shard, base, vol, journal, rec);
                    return;
                }
                _ => {}
            }
            let votes: Vec<HopVote> = hops
                .iter()
                .map(|&(i, k)| {
                    rec.request_stage(op as u32, request_stage::VOTE, lane, i as u8);
                    (
                        i,
                        vol.tables
                            .probe_admit(k, spec.sl, spec.distance, spec.weight),
                    )
                })
                .collect();
            journal.append(JournalRecord::Voted {
                key,
                votes: votes.clone(),
            });
            if matches!(env.crash, Some(CrashPoint::BeforeReply)) {
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            vol.cache
                .insert((key, phase.code()), CachedReply::Voted(votes.clone()));
            let _ = tx.send(FromShard::Voted {
                op,
                from: shard,
                votes,
            });
        }
        ToShard::Commit { op, spec, hops } => {
            // Write-ahead: the intent is durable before any mutation,
            // so every crash below rolls forward to a completed
            // commit on restart.
            journal.append(JournalRecord::CommitIntent {
                key,
                spec,
                hops: hops.clone(),
            });
            match env.crash {
                Some(CrashPoint::BeforeAct) => {
                    crash_restart(shard, base, vol, journal, rec);
                    return;
                }
                Some(CrashPoint::MidBatch) => {
                    // First hop reserved, rest of the batch lost with
                    // the worker — the half-committed transaction.
                    let _ = apply_commit(&mut vol.tables, op, spec, &hops[..1], rec, lane, true);
                    crash_restart(shard, base, vol, journal, rec);
                    return;
                }
                _ => {}
            }
            let done = apply_commit(&mut vol.tables, op, spec, &hops, rec, lane, true);
            // The conflict gate guarantees nothing touched these
            // tables since the vote, so every voted-yes hop commits.
            assert!(
                done.len() == hops.len(),
                "vote/commit divergence on shard {shard}"
            );
            journal.append(JournalRecord::CommitDone { key });
            if matches!(env.crash, Some(CrashPoint::BeforeReply)) {
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            vol.cache
                .insert((key, phase.code()), CachedReply::Committed(done.clone()));
            let _ = tx.send(FromShard::Committed {
                op,
                from: shard,
                hops: done,
            });
        }
        ToShard::Abort {
            op,
            spec,
            hops,
            fail_at,
        } => {
            journal.append(JournalRecord::AbortIntent {
                key,
                spec,
                hops: hops.clone(),
                fail_at,
            });
            rec.request_stage(op as u32, request_stage::ABORT, lane, fail_at as u8);
            if matches!(
                env.crash,
                Some(CrashPoint::BeforeAct | CrashPoint::MidBatch)
            ) {
                // Both points land inside the rollback replay; the
                // journal rolls the whole abort forward on restart.
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            let error = apply_abort(
                &mut vol.tables,
                spec,
                &hops,
                fail_at,
                rec,
                lane,
                shard,
                true,
            );
            journal.append(JournalRecord::AbortDone { key });
            if matches!(env.crash, Some(CrashPoint::BeforeReply)) {
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            vol.cache
                .insert((key, phase.code()), CachedReply::Aborted(error));
            let _ = tx.send(FromShard::Aborted {
                op,
                from: shard,
                error,
            });
        }
        ToShard::Release { op, weight, hops } => {
            journal.append(JournalRecord::ReleaseIntent {
                key,
                weight,
                hops: hops.clone(),
            });
            match env.crash {
                Some(CrashPoint::BeforeAct) => {
                    crash_restart(shard, base, vol, journal, rec);
                    return;
                }
                Some(CrashPoint::MidBatch) => {
                    // Release the last hop (descending order starts
                    // there), then go down.
                    apply_release(
                        &mut vol.tables,
                        weight,
                        &hops[hops.len().saturating_sub(1)..],
                    );
                    crash_restart(shard, base, vol, journal, rec);
                    return;
                }
                _ => {}
            }
            apply_release(&mut vol.tables, weight, &hops);
            journal.append(JournalRecord::ReleaseDone { key });
            if matches!(env.crash, Some(CrashPoint::BeforeReply)) {
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            vol.cache.insert((key, phase.code()), CachedReply::Released);
            let _ = tx.send(FromShard::Released { op, from: shard });
        }
        ToShard::Repair { op, seed } => {
            journal.append(JournalRecord::RepairIntent { key, seed });
            if matches!(
                env.crash,
                Some(CrashPoint::BeforeAct | CrashPoint::MidBatch)
            ) {
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            let (damage, summary) = apply_repair(&mut vol.tables, seed, rec);
            journal.append(JournalRecord::RepairDone { key });
            if matches!(env.crash, Some(CrashPoint::BeforeReply)) {
                crash_restart(shard, base, vol, journal, rec);
                return;
            }
            vol.cache.insert(
                (key, phase.code()),
                CachedReply::Repaired { damage, summary },
            );
            let _ = tx.send(FromShard::Repaired {
                op,
                from: shard,
                damage,
                summary,
            });
        }
        ToShard::Finish => {}
    }
}

/// The shard worker: exclusively owns one partition of the port
/// tables and executes the coordinator's protocol messages in arrival
/// order. It never blocks on the (unbounded) reply channel, so the
/// service cannot deadlock. Scripted crashes (see [`ServeFaultPlan`])
/// destroy its volatile state; the write-ahead journal brings the
/// partition back.
fn shard_worker(
    shard: usize,
    base: &PortTables,
    rx: &mpsc::Receiver<Envelope>,
    tx: &mpsc::Sender<FromShard>,
    journal_enabled: bool,
) {
    let mut rec = iba_obs::ObsRecorder::with_tracer(WORKER_TRACE_CAP);
    let mut journal = IntentJournal::new(journal_enabled);
    let mut vol = ShardVolatile {
        tables: base.empty_like(),
        cache: BTreeMap::new(),
    };
    while let Ok(env) = rx.recv() {
        if matches!(env.msg, ToShard::Finish) {
            let tables = std::mem::replace(&mut vol.tables, base.empty_like());
            let _ = tx.send(FromShard::Finished {
                shard,
                tables: Box::new(tables),
                rec: Box::new(std::mem::replace(&mut rec, iba_obs::ObsRecorder::new())),
                journal: Box::new(std::mem::take(&mut journal)),
            });
            return;
        }
        handle_message(shard, base, env, &mut vol, &mut journal, &mut rec, tx);
    }
}

/// What the coordinator decided to do with the next trace operation.
enum Dispatch {
    /// Resolved locally, no shard involved.
    Local(Resolution),
    /// Admission voted across `participants`.
    Admit {
        rid: u32,
        spec: AdmitSpec,
        path: Vec<PortKey>,
        participants: Vec<usize>,
    },
    /// Teardown released across `participants`.
    Teardown {
        weight: Weight,
        hops: Vec<HopReservation>,
        participants: Vec<usize>,
    },
    /// Repair drill across every shard.
    Repair { seed: u64 },
}

/// Shards of a hop list, ascending and deduplicated.
fn participants_of(keys: &[PortKey], shards: usize) -> Vec<usize> {
    let mut out: Vec<usize> = keys.iter().map(|&k| shard_of(k, shards)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The coordinator-side fault engine: consumes the plan's scheduled
/// faults at message send/receive sites, meters the deterministic
/// timeouts that stand in for wall-clock expiry, and dedupes the
/// duplicate replies its own duplicate deliveries produce.
///
/// Faults target the **lowest** participating shard of their op (a
/// pure function of the trace), so the set of consumed faults — and
/// with it every count in [`FaultStats`] — is identical at any shard
/// count.
struct FaultEngine {
    faults: Vec<ServeFault>,
    backoff: Backoff,
    /// Retry attempt counter per op (drives the backoff exponent).
    attempts: BTreeMap<usize, u32>,
    /// Pending reply-loss resends: `(op, phase code)` → the message to
    /// re-send to the target shard once its first reply is swallowed.
    resend: BTreeMap<(usize, u8), (usize, ToShard)>,
    /// Outstanding duplicate deliveries: `(op, phase code, shard)` →
    /// surplus replies still expected (and to be dropped).
    surplus: BTreeMap<(usize, u8, usize), u32>,
    /// Keys of `surplus` whose first reply already advanced the state
    /// machine — later copies are duplicates.
    applied: BTreeSet<(usize, u8, usize)>,
    stats: FaultStats,
    /// Idempotency-key epoch, bumped by every finalized repair drill.
    epoch: u32,
}

impl FaultEngine {
    fn new(plan: &ServeFaultPlan) -> Self {
        FaultEngine {
            faults: plan.faults.clone(),
            backoff: Backoff::new(plan.seed ^ SERVE_FAULT_SEED, RetryPolicy::default()),
            attempts: BTreeMap::new(),
            resend: BTreeMap::new(),
            surplus: BTreeMap::new(),
            applied: BTreeSet::new(),
            stats: FaultStats::default(),
            epoch: 0,
        }
    }

    /// Consumes a scheduled send-side fault (anything but reply loss)
    /// for this op and phase.
    fn take_send_fault(&mut self, op: u32, phase: ProtocolPhase) -> Option<ServeFaultKind> {
        let idx = self.faults.iter().position(|f| {
            f.op == op && f.phase == phase && !matches!(f.kind, ServeFaultKind::ReplyLoss)
        })?;
        Some(self.faults.swap_remove(idx).kind)
    }

    fn has_reply_fault(&self, op: u32, phase: ProtocolPhase) -> bool {
        self.faults
            .iter()
            .any(|f| f.op == op && f.phase == phase && matches!(f.kind, ServeFaultKind::ReplyLoss))
    }

    fn take_reply_fault(&mut self, op: u32, phase: ProtocolPhase) -> bool {
        let idx = self.faults.iter().position(|f| {
            f.op == op && f.phase == phase && matches!(f.kind, ServeFaultKind::ReplyLoss)
        });
        match idx {
            Some(i) => {
                self.faults.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// A deterministic timeout expiry: draws the next backoff delay
    /// (advancing the seeded jitter stream) and meters it. The retry
    /// the caller sends right after models the post-timeout re-send.
    fn timeout(&mut self, shard: usize, op: usize, rec: &mut iba_obs::ObsRecorder) {
        use iba_obs::Recorder;
        let attempt = self.attempts.entry(op).or_insert(0);
        let delay = self.backoff.delay(*attempt);
        *attempt += 1;
        self.stats.timeouts += 1;
        rec.serve_timeout(shard as u8, delay);
    }

    /// Sends one protocol message through the fault layer. `is_target`
    /// marks the op's designated fault-target shard (the lowest
    /// participant); every other shard always gets a clean first
    /// delivery.
    fn send(
        &mut self,
        to_shard: &[mpsc::SyncSender<Envelope>],
        shard: usize,
        is_target: bool,
        op: usize,
        msg: ToShard,
        rec: &mut iba_obs::ObsRecorder,
    ) {
        let Some(phase) = msg.phase() else {
            let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
            return;
        };
        if is_target {
            if let Some(kind) = self.take_send_fault(op as u32, phase) {
                match kind {
                    ServeFaultKind::Crash(point) => {
                        // Scripted crash rides the envelope; the worker
                        // goes down without replying, the timeout fires
                        // and the clean retry lands on the restarted
                        // worker (idempotency cache absorbs it if the
                        // transaction rolled forward).
                        self.stats.crashes += 1;
                        let _ = to_shard[shard].send(Envelope {
                            epoch: self.epoch,
                            crash: Some(point),
                            msg: msg.clone(),
                        });
                        self.timeout(shard, op, rec);
                        let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
                    }
                    ServeFaultKind::MsgLoss => {
                        // First delivery lost in flight: only the
                        // post-timeout retry reaches the worker.
                        self.stats.msg_losses += 1;
                        self.timeout(shard, op, rec);
                        let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
                    }
                    ServeFaultKind::MsgDelay => {
                        // Delayed past the timeout: the original AND
                        // the retry both arrive. The worker's cache
                        // answers the duplicate; the surplus entry
                        // makes the coordinator drop the extra reply.
                        self.stats.msg_delays += 1;
                        let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg.clone()));
                        self.timeout(shard, op, rec);
                        let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
                        *self.surplus.entry((op, phase.code(), shard)).or_insert(0) += 1;
                    }
                    ServeFaultKind::ReplyLoss => {
                        // Filtered out by take_send_fault; keep the
                        // message flowing if it ever slipped through.
                        let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
                    }
                }
                return;
            }
            if self.has_reply_fault(op as u32, phase) {
                // Reply loss is consumed at receive time; remember the
                // message so the post-timeout retry can be re-sent.
                self.resend.insert((op, phase.code()), (shard, msg.clone()));
            }
        }
        let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
    }

    /// Receive-side fault layer. Returns `true` when the reply must
    /// not reach the state machines: either the scheduled reply loss
    /// swallowed it (the timeout fires and the retry goes out), or it
    /// is the surplus copy of an already-applied duplicate delivery.
    fn intercept(
        &mut self,
        reply: &FromShard,
        to_shard: &[mpsc::SyncSender<Envelope>],
        rec: &mut iba_obs::ObsRecorder,
    ) -> bool {
        let (op, phase, from) = match reply {
            FromShard::Voted { op, from, .. } => (*op, ProtocolPhase::Vote, *from),
            FromShard::Committed { op, from, .. } => (*op, ProtocolPhase::Commit, *from),
            FromShard::Aborted { op, from, .. } => (*op, ProtocolPhase::Abort, *from),
            FromShard::Released { op, from } => (*op, ProtocolPhase::Release, *from),
            FromShard::Repaired { op, from, .. } => (*op, ProtocolPhase::Repair, *from),
            FromShard::Finished { .. } => return false,
        };
        let pkey = (op, phase.code());
        if self.resend.get(&pkey).is_some_and(|&(s, _)| s == from)
            && self.take_reply_fault(op as u32, phase)
        {
            if let Some((shard, msg)) = self.resend.remove(&pkey) {
                self.stats.reply_losses += 1;
                self.timeout(shard, op, rec);
                let _ = to_shard[shard].send(Envelope::clean(self.epoch, msg));
                return true;
            }
        }
        let skey = (op, phase.code(), from);
        if let Some(n) = self.surplus.get_mut(&skey) {
            if self.applied.contains(&skey) {
                *n -= 1;
                if *n == 0 {
                    self.surplus.remove(&skey);
                    self.applied.remove(&skey);
                }
                return true;
            }
            self.applied.insert(skey);
        }
        false
    }
}

/// Runs a trace through the sharded service and returns the report.
///
/// `planner` supplies the topology, routing, SL configuration and
/// table template; its own tables are never touched. Worker metrics
/// (allocator probes, recovery counters, `serve_shard_*`) merge into
/// `rec` alongside the coordinator's admission counters when the run
/// finishes.
///
/// Outcomes and final tables are byte-identical to
/// [`apply_trace_sequential`] on the same trace at **any** shard
/// count; only the `serve_*` metrics depend on the shard count.
pub fn run_trace(
    planner: &QosManager,
    ops: &[TraceOp],
    shards: usize,
    rec: &mut iba_obs::ObsRecorder,
) -> ServeReport {
    run_trace_faulted(
        planner,
        ops,
        shards,
        &ServeFaultPlan::none(),
        &ServeOptions::default(),
        rec,
    )
}

/// [`run_trace`] with a control-plane fault plan and fault-tolerance
/// options. With the empty plan and default options this *is*
/// [`run_trace`]; with faults, the run must still converge to the
/// same outcomes and table bytes — crashes are survived by journal
/// replay, lost messages and replies by deterministic timeouts plus
/// idempotent retries. Only the shedding ladder (off by default) is
/// allowed to diverge from the sequential reference.
pub fn run_trace_faulted(
    planner: &QosManager,
    ops: &[TraceOp],
    shards: usize,
    plan: &ServeFaultPlan,
    opts: &ServeOptions,
    rec: &mut iba_obs::ObsRecorder,
) -> ServeReport {
    use iba_obs::{request_stage, Recorder};
    let shards = shards.max(1);
    let base = planner.port_tables();
    let mut eng = FaultEngine::new(plan);
    // lint: allow(no-thread-spawn) -- the shard workers ARE the service: each exclusively owns one table partition, and the coordinator's strict in-order dispatch keeps every observable byte-identical at any shard count (proven by tests/service_equivalence.rs).
    std::thread::scope(|scope| {
        // lint: allow(no-unbounded-channel) -- the one shared reply channel: workers never block sending on it (the deadlock-freedom argument in the module docs), and its population is bounded by the coordinator's in-flight window, so a bounded channel would only add a capacity to tune without adding backpressure.
        let (reply_tx, reply_rx) = mpsc::channel::<FromShard>();
        let mut to_shard: Vec<mpsc::SyncSender<Envelope>> = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Envelope>(8);
            to_shard.push(tx);
            let reply = reply_tx.clone();
            let journal_enabled = opts.journal;
            scope.spawn(move || shard_worker(s, base, &rx, &reply, journal_enabled));
        }
        drop(reply_tx);

        let n = ops.len();
        let mut outcomes: Vec<TraceOutcome> = Vec::with_capacity(n);
        let mut pending: BTreeMap<usize, OpState> = BTreeMap::new();
        let mut dispatched_at: BTreeMap<usize, usize> = BTreeMap::new();
        let mut claims: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut claimed = vec![false; shards];
        let mut ids: BTreeMap<u32, LiveConn> = BTreeMap::new();
        // Trace indices marked for a rung-1 degraded install when the
        // bounded queue forced them to wait (see ServeOptions).
        let mut degrade: BTreeSet<usize> = BTreeSet::new();
        let (mut accepted, mut rejected, mut released) = (0u64, 0u64, 0u64);
        let (mut next, mut dispatch) = (0usize, 0usize); // finalize / dispatch cursors

        while next < n {
            // Dispatch strictly in trace order while the head of the
            // undispatched suffix is eligible. Stopping at the first
            // ineligible operation (instead of skipping it) is what
            // keeps every per-shard message stream a pure function of
            // the trace.
            while dispatch < n {
                let in_flight = dispatch - next;
                if in_flight >= opts.queue_capacity {
                    // The bounded admission queue is full. Without the
                    // ladder this is pure backpressure (wait for the
                    // pipeline to drain); with it, the degradation
                    // ladder acts: rung 0 sheds the lowest SLs
                    // outright, rung 1 marks the rest for a degraded
                    // (looser-distance) install once a slot frees.
                    if opts.shed_ladder {
                        match &ops[dispatch] {
                            TraceOp::Admit(req) if req.sl.raw() < opts.shed_sl_floor => {
                                rec.serve_shed(0);
                                eng.stats.shed[0] += 1;
                                rec.serve_queue_depth(in_flight as u64);
                                rec.request_stage(
                                    dispatch as u32,
                                    request_stage::DISPATCH,
                                    0,
                                    request_stage::NO_PATH,
                                );
                                dispatched_at.insert(dispatch, next);
                                pending.insert(
                                    dispatch,
                                    OpState::Resolved(Resolution::Rejected(
                                        RejectReason::Overloaded,
                                    )),
                                );
                                dispatch += 1;
                                continue;
                            }
                            TraceOp::Admit(_) => {
                                degrade.insert(dispatch);
                                break;
                            }
                            _ => break,
                        }
                    }
                    break;
                }
                let Some(action) = plan_dispatch(
                    &ops[dispatch],
                    planner,
                    shards,
                    in_flight,
                    &claimed,
                    &mut ids,
                ) else {
                    break;
                };
                rec.serve_queue_depth(in_flight as u64);
                rec.request_stage(
                    dispatch as u32,
                    request_stage::DISPATCH,
                    0,
                    request_stage::NO_PATH,
                );
                dispatched_at.insert(dispatch, next);
                let op = dispatch;
                match action {
                    Dispatch::Local(res) => {
                        pending.insert(op, OpState::Resolved(res));
                    }
                    Dispatch::Admit {
                        rid,
                        mut spec,
                        path,
                        participants,
                    } => {
                        if degrade.remove(&op) {
                            // Rung 1: the queue forced this admission
                            // to wait; install it at one looser
                            // distance step so it costs less table
                            // bandwidth.
                            if let Some(looser) = spec.distance.looser() {
                                rec.serve_shed(1);
                                eng.stats.shed[1] += 1;
                                spec.distance = looser;
                            }
                        }
                        let target = participants.first().copied().unwrap_or(0);
                        for &s in &participants {
                            claimed[s] = true;
                            let hops: Vec<(usize, PortKey)> = path
                                .iter()
                                .enumerate()
                                .filter(|&(_, k)| shard_of(*k, shards) == s)
                                .map(|(i, &k)| (i, k))
                                .collect();
                            eng.send(
                                &to_shard,
                                s,
                                s == target,
                                op,
                                ToShard::Vote { op, spec, hops },
                                rec,
                            );
                        }
                        claims.insert(op, participants.clone());
                        let waiting = participants.len();
                        pending.insert(
                            op,
                            OpState::Voting {
                                rid,
                                spec,
                                path,
                                participants,
                                waiting,
                                votes: Vec::new(),
                            },
                        );
                    }
                    Dispatch::Teardown {
                        weight,
                        hops,
                        participants,
                    } => {
                        let target = participants.first().copied().unwrap_or(0);
                        for &s in &participants {
                            claimed[s] = true;
                            let mine: Vec<(usize, HopReservation)> = hops
                                .iter()
                                .enumerate()
                                .filter(|&(_, h)| {
                                    shard_of(
                                        PortKey {
                                            node: h.node,
                                            port: h.port,
                                        },
                                        shards,
                                    ) == s
                                })
                                .map(|(i, &h)| (i, h))
                                .collect();
                            eng.send(
                                &to_shard,
                                s,
                                s == target,
                                op,
                                ToShard::Release {
                                    op,
                                    weight,
                                    hops: mine,
                                },
                                rec,
                            );
                        }
                        let waiting = participants.len();
                        claims.insert(op, participants);
                        pending.insert(op, OpState::Releasing { waiting });
                    }
                    Dispatch::Repair { seed } => {
                        for (s, claim) in claimed.iter_mut().enumerate().take(shards) {
                            *claim = true;
                            eng.send(&to_shard, s, s == 0, op, ToShard::Repair { op, seed }, rec);
                        }
                        claims.insert(op, (0..shards).collect());
                        pending.insert(
                            op,
                            OpState::Repairing {
                                waiting: shards,
                                damage: 0,
                                summary: RecoverySummary::default(),
                            },
                        );
                    }
                }
                dispatch += 1;
            }

            // Wait for the oldest in-flight operation specifically;
            // replies for younger operations advance their state
            // machines as they arrive (that is the pipelining).
            while !matches!(pending.get(&next), Some(OpState::Resolved(_))) {
                let Ok(reply) = reply_rx.recv() else {
                    // A worker can only disappear by panicking; the
                    // scope join below re-raises it.
                    return drain_report(
                        planner, outcomes, ids, accepted, rejected, released, eng.stats,
                    );
                };
                if eng.intercept(&reply, &to_shard, rec) {
                    continue;
                }
                apply_reply(reply, &mut pending, &to_shard, &mut eng, rec);
            }

            // Finalize in trace order.
            if let Some(OpState::Resolved(res)) = pending.remove(&next) {
                for s in claims.remove(&next).unwrap_or_default() {
                    claimed[s] = false;
                }
                let start = dispatched_at.remove(&next).unwrap_or(next);
                rec.serve_batch_latency((next - start) as u64);
                outcomes.push(match res {
                    Resolution::Admitted {
                        rid,
                        sl,
                        weight,
                        hops,
                    } => {
                        accepted += 1;
                        rec.cac_admit(sl);
                        ids.insert(rid, LiveConn { rid, weight, hops });
                        TraceOutcome::Admitted { rid }
                    }
                    Resolution::Rejected(reason) => {
                        rejected += 1;
                        rec.cac_reject(reason.kind());
                        TraceOutcome::Rejected(reason)
                    }
                    Resolution::TornDown(torn) => {
                        if torn {
                            released += 1;
                            rec.cac_release();
                        }
                        TraceOutcome::TornDown(torn)
                    }
                    Resolution::Repaired { damage, summary } => {
                        // Repair invalidates the live handles (see
                        // TraceOp::Repair) and with them every
                        // outstanding idempotency key: bump the epoch.
                        ids.clear();
                        eng.epoch = eng.epoch.wrapping_add(1);
                        TraceOutcome::Repaired { damage, summary }
                    }
                });
                rec.request_stage(
                    next as u32,
                    request_stage::FINALIZE,
                    0,
                    request_stage::NO_PATH,
                );
                // Drain-side queue sample: depth after this operation
                // left the pipeline (the dispatch-side twin is above).
                rec.serve_queue_depth((dispatch - next - 1) as u64);
                // One logical tick per finalized operation — the clock
                // the timeline aggregator windows over; the sequential
                // reference advances the same clock per applied op.
                rec.tick((next + 1) as u64);
            }
            next += 1;
        }

        // Collect every shard's partition, recorder and journal.
        for tx in &to_shard {
            let _ = tx.send(Envelope::clean(eng.epoch, ToShard::Finish));
        }
        let mut parts: Vec<Option<PortTables>> = (0..shards).map(|_| None).collect();
        let mut shard_requests: Vec<Vec<(u64, iba_obs::TraceEvent)>> = vec![Vec::new(); shards];
        let mut journals: Vec<IntentJournal> = vec![IntentJournal::new(false); shards];
        let mut seen = 0;
        while seen < shards {
            let Ok(reply) = reply_rx.recv() else { break };
            if let FromShard::Finished {
                shard,
                tables,
                rec: worker_rec,
                journal,
            } = reply
            {
                parts[shard] = Some(*tables);
                shard_requests[shard] = drain_request_records(&worker_rec);
                rec.merge(&worker_rec);
                journals[shard] = *journal;
                seen += 1;
            }
        }
        let mut tables = base.empty_like();
        for t in parts.into_iter().flatten() {
            tables.absorb(t);
        }
        // Coordinator records first, then each shard's in shard order —
        // a deterministic concatenation regardless of reply arrival
        // order (the reassembler orders causally, not by position).
        let mut request_records = drain_request_records(rec);
        for sr in shard_requests {
            request_records.extend(sr);
        }
        ServeReport {
            outcomes,
            tables,
            accepted,
            rejected,
            released,
            live: ids.into_values().collect(),
            request_records,
            journals,
            fault_stats: eng.stats,
        }
    })
}

/// Decides whether the next trace operation can be dispatched now and,
/// if so, what to send. Returns `None` when the operation must wait:
/// admissions wait for their shard set to be unclaimed; teardowns and
/// repairs wait for an empty pipeline (their correctness depends on
/// every earlier outcome being finalized).
fn plan_dispatch(
    op: &TraceOp,
    planner: &QosManager,
    shards: usize,
    in_flight: usize,
    claimed: &[bool],
    ids: &mut BTreeMap<u32, LiveConn>,
) -> Option<Dispatch> {
    match op {
        TraceOp::Admit(req) => match planner.plan_request(req) {
            Err(e) => Some(Dispatch::Local(Resolution::Rejected(e))),
            Ok(plan) => {
                let participants = participants_of(&plan.path, shards);
                if participants.iter().any(|&s| claimed[s]) {
                    return None;
                }
                Some(Dispatch::Admit {
                    rid: req.id,
                    spec: AdmitSpec {
                        sl: req.sl,
                        vl: plan.vl,
                        distance: plan.distance,
                        weight: plan.weight,
                    },
                    path: plan.path,
                    participants,
                })
            }
        },
        TraceOp::Teardown(rid) => {
            if in_flight > 0 {
                return None;
            }
            match ids.remove(rid) {
                None => Some(Dispatch::Local(Resolution::TornDown(false))),
                Some(conn) => {
                    let keys: Vec<PortKey> = conn
                        .hops
                        .iter()
                        .map(|h| PortKey {
                            node: h.node,
                            port: h.port,
                        })
                        .collect();
                    Some(Dispatch::Teardown {
                        weight: conn.weight,
                        hops: conn.hops,
                        participants: participants_of(&keys, shards),
                    })
                }
            }
        }
        TraceOp::Repair { seed } => {
            if in_flight > 0 {
                return None;
            }
            Some(Dispatch::Repair { seed: *seed })
        }
    }
}

/// Advances one operation's state machine with a shard reply,
/// launching the commit/abort phase when the last vote lands.
fn apply_reply(
    reply: FromShard,
    pending: &mut BTreeMap<usize, OpState>,
    to_shard: &[mpsc::SyncSender<Envelope>],
    eng: &mut FaultEngine,
    rec: &mut iba_obs::ObsRecorder,
) {
    match reply {
        FromShard::Voted { op, votes: got, .. } => {
            let Some(OpState::Voting {
                rid,
                spec,
                path,
                participants,
                waiting,
                votes,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            votes.extend(got);
            *waiting -= 1;
            if *waiting > 0 {
                return;
            }
            let fail_at = votes
                .iter()
                .filter(|(_, v)| v.is_err())
                .map(|&(i, _)| i)
                .min();
            let (rid, spec) = (*rid, *spec);
            let target = participants.first().copied().unwrap_or(0);
            let participants = participants.clone();
            let path = std::mem::take(path);
            match fail_at {
                None => {
                    // Unanimous yes: commit everywhere.
                    let waiting = participants.len();
                    for &s in &participants {
                        let hops: Vec<(usize, PortKey)> = path
                            .iter()
                            .enumerate()
                            .filter(|&(_, k)| shard_of(*k, to_shard.len()) == s)
                            .map(|(i, &k)| (i, k))
                            .collect();
                        eng.send(
                            to_shard,
                            s,
                            s == target,
                            op,
                            ToShard::Commit { op, spec, hops },
                            rec,
                        );
                    }
                    pending.insert(
                        op,
                        OpState::Committing {
                            rid,
                            spec,
                            waiting,
                            hops: Vec::new(),
                        },
                    );
                }
                Some(k) => {
                    // First failing hop wins; every participant replays
                    // its slice of the sequential rollback.
                    let fail_key = path[k];
                    let waiting = participants.len();
                    for &s in &participants {
                        let hops: Vec<(usize, PortKey)> = path
                            .iter()
                            .enumerate()
                            .filter(|&(_, key)| shard_of(*key, to_shard.len()) == s)
                            .map(|(i, &key)| (i, key))
                            .collect();
                        eng.send(
                            to_shard,
                            s,
                            s == target,
                            op,
                            ToShard::Abort {
                                op,
                                spec,
                                hops,
                                fail_at: k,
                            },
                            rec,
                        );
                    }
                    pending.insert(
                        op,
                        OpState::Aborting {
                            fail_key,
                            waiting,
                            error: None,
                        },
                    );
                }
            }
        }
        FromShard::Committed { op, hops: got, .. } => {
            let Some(OpState::Committing {
                rid,
                spec,
                waiting,
                hops,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            hops.extend(got);
            *waiting -= 1;
            if *waiting > 0 {
                return;
            }
            hops.sort_unstable_by_key(|&(i, _)| i);
            let res = Resolution::Admitted {
                rid: *rid,
                sl: spec.sl.raw(),
                weight: spec.weight,
                hops: hops.iter().map(|&(_, h)| h).collect(),
            };
            pending.insert(op, OpState::Resolved(res));
        }
        FromShard::Aborted { op, error: got, .. } => {
            let Some(OpState::Aborting {
                fail_key,
                waiting,
                error,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            if error.is_none() {
                *error = got;
            }
            *waiting -= 1;
            if *waiting > 0 {
                return;
            }
            let res = Resolution::Rejected(reject_for(*error, *fail_key));
            pending.insert(op, OpState::Resolved(res));
        }
        FromShard::Released { op, .. } => {
            let Some(OpState::Releasing { waiting }) = pending.get_mut(&op) else {
                return;
            };
            *waiting -= 1;
            if *waiting == 0 {
                pending.insert(op, OpState::Resolved(Resolution::TornDown(true)));
            }
        }
        FromShard::Repaired {
            op,
            damage: got_damage,
            summary: got,
            ..
        } => {
            let Some(OpState::Repairing {
                waiting,
                damage,
                summary,
            }) = pending.get_mut(&op)
            else {
                return;
            };
            *damage += got_damage;
            summary.tables += got.tables;
            summary.repaired += got.repaired;
            summary.evicted += got.evicted;
            summary.reinstalled += got.reinstalled;
            summary.lost += got.lost;
            *waiting -= 1;
            if *waiting == 0 {
                let res = Resolution::Repaired {
                    damage: *damage,
                    summary: *summary,
                };
                pending.insert(op, OpState::Resolved(res));
            }
        }
        FromShard::Finished { .. } => {}
    }
}

/// Fallback report when a worker disappeared mid-trace (its panic is
/// re-raised by the thread scope as soon as this returns).
fn drain_report(
    planner: &QosManager,
    outcomes: Vec<TraceOutcome>,
    ids: BTreeMap<u32, LiveConn>,
    accepted: u64,
    rejected: u64,
    released: u64,
    fault_stats: FaultStats,
) -> ServeReport {
    ServeReport {
        outcomes,
        tables: planner.port_tables().empty_like(),
        accepted,
        rejected,
        released,
        live: ids.into_values().collect(),
        request_records: Vec::new(),
        journals: Vec::new(),
        fault_stats,
    }
}

/// Filters a recorder's ring for the per-request causal records
/// (`TraceEvent::Request`), leaving every other kind in place.
fn drain_request_records(rec: &iba_obs::ObsRecorder) -> Vec<(u64, iba_obs::TraceEvent)> {
    rec.tracer
        .as_ref()
        .map(|t| {
            t.records()
                .into_iter()
                .filter(|(_, ev)| matches!(ev, iba_obs::TraceEvent::Request { .. }))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::SlTable;
    use iba_topo::{irregular, updown};

    fn planner(seed: u64) -> QosManager {
        let topo = irregular::generate(irregular::IrregularConfig::with_switches(4, seed));
        let routing = updown::compute(&topo);
        QosManager::new(topo, routing, SlTable::paper_table1())
    }

    #[test]
    fn trace_generation_is_seeded_and_mixed() {
        let cfg = TraceConfig::new(16, 7, 200);
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "same seed, same trace");
        let admits = a.iter().filter(|o| matches!(o, TraceOp::Admit(_))).count();
        let teardowns = a
            .iter()
            .filter(|o| matches!(o, TraceOp::Teardown(_)))
            .count();
        let repairs = a
            .iter()
            .filter(|o| matches!(o, TraceOp::Repair { .. }))
            .count();
        assert!(admits > 80, "{admits} admits");
        assert!(teardowns > 20, "{teardowns} teardowns");
        assert!(repairs > 3, "{repairs} repairs");
        let no_repair = generate_trace(&TraceConfig {
            repair_pct: 0,
            ..cfg
        });
        assert!(no_repair
            .iter()
            .all(|o| !matches!(o, TraceOp::Repair { .. })));
    }

    #[test]
    fn sharded_run_matches_sequential_on_one_trace() {
        let cfg = TraceConfig::new(16, 3, 96);
        let ops = generate_trace(&cfg);
        let mut seq_mgr = planner(0);
        let mut seq_rec = iba_obs::ObsRecorder::new();
        let seq = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        for shards in [1usize, 2, 8] {
            let p = planner(0);
            let mut rec = iba_obs::ObsRecorder::new();
            let report = run_trace(&p, &ops, shards, &mut rec);
            assert_eq!(report.outcomes, seq, "outcomes diverge at {shards} shards");
            assert_eq!(
                format!("{:?}", report.tables),
                format!("{:?}", seq_mgr.port_tables()),
                "tables diverge at {shards} shards"
            );
        }
    }

    #[test]
    fn request_records_cover_every_operation() {
        use iba_obs::{request_stage, RequestSpan};
        let cfg = TraceConfig::new(16, 5, 64);
        let ops = generate_trace(&cfg);
        let p = planner(0);
        let mut rec = iba_obs::ObsRecorder::with_tracer(1 << 16);
        let report = run_trace(&p, &ops, 4, &mut rec);

        let spans = iba_obs::reassemble(&report.request_records);
        assert_eq!(spans.len(), ops.len(), "one span per trace op");
        for (span, outcome) in spans.iter().zip(&report.outcomes) {
            let stages: Vec<u8> = span.stages.iter().map(|s| s.stage).collect();
            assert_eq!(stages[0], request_stage::DISPATCH, "rid {}", span.rid);
            assert_eq!(
                *stages.last().unwrap(),
                request_stage::FINALIZE,
                "rid {}",
                span.rid
            );
            match outcome {
                TraceOutcome::Admitted { .. } => {
                    assert!(
                        stages.contains(&request_stage::COMMIT),
                        "admitted rid {} has no commit stage",
                        span.rid
                    );
                    assert!(!span.aborted(), "admitted rid {} aborted", span.rid);
                }
                // Planner-local rejections never reach a shard, so an
                // abort stage is possible but not guaranteed here.
                TraceOutcome::Rejected(_) | TraceOutcome::TornDown(_) => {}
                TraceOutcome::Repaired { .. } => {}
            }
        }
        // At least one table-level rejection went through the
        // vote/abort protocol on this trace.
        assert!(
            spans.iter().any(RequestSpan::aborted),
            "trace exercised no abort path"
        );

        // The record stream is a pure function of the trace: same
        // trace, same shards, same records.
        let p2 = planner(0);
        let mut rec2 = iba_obs::ObsRecorder::with_tracer(1 << 16);
        let report2 = run_trace(&p2, &ops, 4, &mut rec2);
        assert_eq!(report.request_records, report2.request_records);
    }

    #[test]
    fn keyed_corruption_is_registry_independent() {
        // The same port must receive the same damage whether its table
        // sits alone in a registry or among others — the property that
        // makes shard-local repair match the sequential pass.
        let mk = |keys: &[PortKey]| {
            let mut pt = PortTables::new(0.8);
            for &k in keys {
                pt.admit_path(
                    &[k],
                    ServiceLevel::new(2).unwrap(),
                    VirtualLane::data(2),
                    Distance::D16,
                    40,
                )
                .ok();
            }
            pt
        };
        let a = PortKey {
            node: iba_sim::NodeId::Switch(0),
            port: 1,
        };
        let b = PortKey {
            node: iba_sim::NodeId::Switch(5),
            port: 3,
        };
        let mut both = mk(&[a, b]);
        let mut alone = mk(&[a]);
        corrupt_tables_keyed(&mut both, 42);
        corrupt_tables_keyed(&mut alone, 42);
        assert_eq!(
            format!("{:?}", both.table(a)),
            format!("{:?}", alone.table(a)),
        );
    }

    #[test]
    fn faulted_run_converges_to_sequential_at_any_shard_count() {
        let cfg = TraceConfig::new(16, 11, 96);
        let ops = generate_trace(&cfg);
        let plan = ServeFaultPlan::generate(11, &ops, 30);
        assert!(!plan.is_empty(), "plan injected nothing");
        let mut seq_mgr = planner(0);
        let mut seq_rec = iba_obs::ObsRecorder::new();
        let seq = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        let mut stats: Option<FaultStats> = None;
        for shards in [1usize, 2, 8] {
            let p = planner(0);
            let mut rec = iba_obs::ObsRecorder::new();
            let report =
                run_trace_faulted(&p, &ops, shards, &plan, &ServeOptions::default(), &mut rec);
            assert_eq!(
                report.outcomes, seq,
                "faulted outcomes diverge at {shards} shards"
            );
            assert_eq!(
                format!("{:?}", report.tables),
                format!("{:?}", seq_mgr.port_tables()),
                "faulted tables diverge at {shards} shards"
            );
            // Consumed-fault counts target the lowest participant
            // shard, so they are a pure function of the trace + plan.
            match stats {
                None => stats = Some(report.fault_stats),
                Some(prev) => assert_eq!(
                    report.fault_stats, prev,
                    "fault stats diverge at {shards} shards"
                ),
            }
        }
        let stats = stats.unwrap();
        assert!(stats.crashes > 0, "plan exercised no crash: {stats:?}");
        assert!(stats.timeouts > 0, "plan exercised no timeout: {stats:?}");
    }

    #[test]
    fn crash_at_every_protocol_step_converges_with_journal() {
        // One deterministic crash per (phase, crash point) pair against
        // the same trace: the journal must absorb each of them.
        let cfg = TraceConfig::new(16, 3, 64);
        let ops = generate_trace(&cfg);
        let mut seq_mgr = planner(0);
        let mut seq_rec = iba_obs::ObsRecorder::new();
        let seq = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        let seq_tables = format!("{:?}", seq_mgr.port_tables());
        let phases = [
            ProtocolPhase::Vote,
            ProtocolPhase::Commit,
            ProtocolPhase::Abort,
            ProtocolPhase::Release,
            ProtocolPhase::Repair,
        ];
        let points = [
            CrashPoint::BeforeAct,
            CrashPoint::MidBatch,
            CrashPoint::BeforeReply,
        ];
        for phase in phases {
            for point in points {
                let faults = ops
                    .iter()
                    .enumerate()
                    .map(|(i, _)| ServeFault {
                        op: i as u32,
                        phase,
                        kind: ServeFaultKind::Crash(point),
                    })
                    .collect();
                let plan = ServeFaultPlan { seed: 0, faults };
                let p = planner(0);
                let mut rec = iba_obs::ObsRecorder::new();
                let report =
                    run_trace_faulted(&p, &ops, 2, &plan, &ServeOptions::default(), &mut rec);
                assert_eq!(
                    report.outcomes, seq,
                    "outcomes diverge crashing at {phase:?}/{point:?}"
                );
                assert_eq!(
                    format!("{:?}", report.tables),
                    seq_tables,
                    "tables diverge crashing at {phase:?}/{point:?}"
                );
                assert!(
                    report.fault_stats.crashes > 0,
                    "no crash consumed at {phase:?}/{point:?}"
                );
            }
        }
    }

    #[test]
    fn journal_disabled_crash_loses_state() {
        // Negative control: the same crash that the journal absorbs
        // must corrupt the run when the journal is off. Crash after a
        // commit is applied but before its reply, on every operation —
        // the wiped shard forgets its reservations.
        let cfg = TraceConfig::new(16, 3, 64);
        let ops = generate_trace(&cfg);
        let mut seq_mgr = planner(0);
        let mut seq_rec = iba_obs::ObsRecorder::new();
        let _ = apply_trace_sequential(&mut seq_mgr, &ops, &mut seq_rec);
        let faults = ops
            .iter()
            .enumerate()
            .map(|(i, _)| ServeFault {
                op: i as u32,
                phase: ProtocolPhase::Commit,
                kind: ServeFaultKind::Crash(CrashPoint::BeforeReply),
            })
            .collect();
        let plan = ServeFaultPlan { seed: 0, faults };
        let opts = ServeOptions {
            journal: false,
            ..ServeOptions::default()
        };
        let p = planner(0);
        let mut rec = iba_obs::ObsRecorder::new();
        let report = run_trace_faulted(&p, &ops, 2, &plan, &opts, &mut rec);
        assert!(report.fault_stats.crashes > 0, "no crash consumed");
        assert_ne!(
            format!("{:?}", report.tables),
            format!("{:?}", seq_mgr.port_tables()),
            "journal-disabled crashes must lose reservations"
        );
    }

    #[test]
    fn shed_ladder_sheds_low_sls_and_degrades_the_rest() {
        let cfg = TraceConfig::new(16, 9, 128);
        let ops = generate_trace(&cfg);
        let opts = ServeOptions {
            queue_capacity: 1,
            shed_ladder: true,
            shed_sl_floor: 4,
            ..ServeOptions::default()
        };
        let p = planner(0);
        let mut rec = iba_obs::ObsRecorder::new();
        let report = run_trace_faulted(&p, &ops, 2, &ServeFaultPlan::none(), &opts, &mut rec);
        assert_eq!(report.outcomes.len(), ops.len());
        let overloaded = report
            .outcomes
            .iter()
            .filter(|o| matches!(o, TraceOutcome::Rejected(RejectReason::Overloaded)))
            .count() as u64;
        assert!(overloaded > 0, "ladder never shed");
        assert_eq!(report.fault_stats.shed[0], overloaded);
        assert!(
            report.fault_stats.shed[1] > 0,
            "ladder never degraded an install"
        );
        // Ladder decisions depend only on the trace: byte-identical at
        // another shard count.
        let p2 = planner(0);
        let mut rec2 = iba_obs::ObsRecorder::new();
        let report2 = run_trace_faulted(&p2, &ops, 8, &ServeFaultPlan::none(), &opts, &mut rec2);
        assert_eq!(report.outcomes, report2.outcomes);
        assert_eq!(report.fault_stats, report2.fault_stats);
        assert_eq!(
            format!("{:?}", report.tables),
            format!("{:?}", report2.tables)
        );
    }

    #[test]
    fn journals_record_and_replay_each_shard() {
        let cfg = TraceConfig::new(16, 5, 48);
        let ops = generate_trace(&cfg);
        let plan = ServeFaultPlan::generate(5, &ops, 25);
        let p = planner(0);
        let mut rec = iba_obs::ObsRecorder::new();
        let report = run_trace_faulted(&p, &ops, 2, &plan, &ServeOptions::default(), &mut rec);
        assert_eq!(report.journals.len(), 2);
        assert!(
            report.journals.iter().any(|j| !j.is_empty()),
            "no shard journaled anything"
        );
        for j in &report.journals {
            assert!(
                j.dangling().is_none(),
                "journal left a dangling intent: {:?}",
                j.dangling()
            );
        }
    }
}
