//! Admitted connection records.

use iba_core::SequenceId;
use iba_sim::NodeId;
use iba_traffic::ConnectionRequest;

/// Handle to an admitted connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ConnectionId(pub u32);

/// One hop's reservation: which output port, and which sequence inside
/// that port's high-priority table.
#[derive(Clone, Copy, Debug)]
pub struct HopReservation {
    /// The node owning the output port.
    pub node: NodeId,
    /// Output port number.
    pub port: u8,
    /// Sequence the connection shares at this hop.
    pub sequence: SequenceId,
}

/// A live connection: the original request plus everything admission
/// derived from it.
#[derive(Clone, Debug)]
pub struct Connection {
    /// The request as issued.
    pub request: ConnectionRequest,
    /// Table weight reserved at every hop.
    pub weight: u32,
    /// Per-hop reservations, source-side first.
    pub hops: Vec<HopReservation>,
    /// Guaranteed end-to-end deadline (cycles), derived from the
    /// distance and the hop count.
    pub deadline: u64,
    /// Nominal interarrival time (cycles) of the CBR source.
    pub interarrival: u64,
}

impl Connection {
    /// Number of arbitration stages the connection crosses.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{Distance, ServiceLevel};
    use iba_topo::HostId;

    #[test]
    fn hop_count_counts_reservations() {
        let req = ConnectionRequest {
            id: 0,
            src: HostId(0),
            dst: HostId(1),
            sl: ServiceLevel::new(2).unwrap(),
            distance: Distance::D8,
            mean_bw_mbps: 4.0,
            packet_bytes: 256,
        };
        let c = Connection {
            request: req,
            weight: 27,
            hops: vec![
                HopReservation {
                    node: NodeId::Host(0),
                    port: 0,
                    sequence: SequenceId::new(0),
                },
                HopReservation {
                    node: NodeId::Switch(0),
                    port: 3,
                    sequence: SequenceId::new(1),
                },
            ],
            deadline: 100_000,
            interarrival: 160_000,
        };
        assert_eq!(c.hop_count(), 2);
    }
}
