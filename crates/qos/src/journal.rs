//! The per-shard write-ahead intent journal: what makes a shard-worker
//! crash survivable.
//!
//! A shard worker owns its table partition **in memory**; a crash
//! (simulated by the control-plane fault engine in [`crate::service`])
//! loses the tables, the idempotency cache — everything volatile. The
//! journal is the one durable artifact: before a worker mutates
//! anything it appends an *intent* record, and after the mutation
//! completes it appends the matching *done* record. On supervised
//! restart the worker replays the journal against a fresh empty
//! partition:
//!
//! * every `…Intent`/`…Done` pair is re-applied in order (the redo
//!   log — all table mutations are deterministic, so the rebuilt
//!   partition is byte-identical to the crash-free one);
//! * a dangling intent at the tail (the transaction interrupted by the
//!   crash) is deterministically **rolled forward**: the coordinator
//!   had already decided commit-vs-abort before sending the message,
//!   so completing the recorded intent is always the correct
//!   resolution — a half-committed batch finishes committing, a
//!   half-rolled-back batch finishes rolling back;
//! * vote records rebuild the reply cache, so a retried message whose
//!   reply was lost in the crash is answered from the cache instead of
//!   being re-executed (exactly-once effect per idempotency key).
//!
//! Records are keyed by [`OpKey`] — the request **epoch** (bumped by
//! every table-wide repair, which invalidates live handles) plus the
//! trace **op index**. Retries reuse the key, which is what makes a
//! re-delivered Commit a cache hit rather than a double reservation.
//!
//! The journal is an in-memory `Vec` here (the workspace has no
//! persistence layer), but the discipline is the real one: append
//! before acting, replay on restart, idempotency keys for retry
//! dedup.

use crate::cac::PortKey;
use crate::connection::HopReservation;
use crate::service::AdmitSpec;
use iba_core::{TableError, Weight};
use std::collections::BTreeMap;

/// Idempotency key of one protocol transaction: `(epoch, op index)`.
///
/// The epoch increments on every finalized repair drill (which
/// invalidates all live connection handles); the op index is the trace
/// position, unique within a run. A retry re-sends the same key.
pub type OpKey = (u32, u32);

/// One journal record. Intents are appended *before* the mutation they
/// describe; done markers after it completed. `Voted` is single-shot
/// (voting never mutates) and exists to rebuild the reply cache.
#[derive(Clone, Debug)]
pub enum JournalRecord {
    /// The worker computed these per-hop votes (non-mutating).
    Voted {
        /// Transaction key.
        key: OpKey,
        /// `(path index, exact admission result)` per owned hop.
        votes: Vec<(usize, Result<(), TableError>)>,
    },
    /// About to reserve the owned hops of an admission, in ascending
    /// path order.
    CommitIntent {
        /// Transaction key.
        key: OpKey,
        /// The admission parameters every hop shares.
        spec: AdmitSpec,
        /// `(path index, port)` in ascending path order.
        hops: Vec<(usize, PortKey)>,
    },
    /// The commit above fully applied.
    CommitDone {
        /// Transaction key.
        key: OpKey,
    },
    /// About to replay the sequential rollback: admit owned hops below
    /// `fail_at`, re-run the failing admission, release in descending
    /// order.
    AbortIntent {
        /// Transaction key.
        key: OpKey,
        /// The admission parameters every hop shares.
        spec: AdmitSpec,
        /// `(path index, port)` in ascending path order.
        hops: Vec<(usize, PortKey)>,
        /// First failing path index (hops at or above it stay
        /// untouched, except the mutation-faithful re-probe at it).
        fail_at: usize,
    },
    /// The abort above fully applied.
    AbortDone {
        /// Transaction key.
        key: OpKey,
    },
    /// About to release the owned hops of a teardown (descending path
    /// order).
    ReleaseIntent {
        /// Transaction key.
        key: OpKey,
        /// Per-hop reserved weight.
        weight: Weight,
        /// `(path index, reservation)` in ascending path order.
        hops: Vec<(usize, HopReservation)>,
    },
    /// The release above fully applied.
    ReleaseDone {
        /// Transaction key.
        key: OpKey,
    },
    /// About to corrupt-and-repair every owned table (the repair
    /// drill), with the given seed.
    RepairIntent {
        /// Transaction key.
        key: OpKey,
        /// Seed of the keyed corruption/repair streams.
        seed: u64,
    },
    /// The repair above fully applied.
    RepairDone {
        /// Transaction key.
        key: OpKey,
    },
}

impl JournalRecord {
    /// The transaction key of this record.
    #[must_use]
    pub fn key(&self) -> OpKey {
        match self {
            JournalRecord::Voted { key, .. }
            | JournalRecord::CommitIntent { key, .. }
            | JournalRecord::CommitDone { key }
            | JournalRecord::AbortIntent { key, .. }
            | JournalRecord::AbortDone { key }
            | JournalRecord::ReleaseIntent { key, .. }
            | JournalRecord::ReleaseDone { key }
            | JournalRecord::RepairIntent { key, .. }
            | JournalRecord::RepairDone { key } => *key,
        }
    }

    /// True for the `…Done` completion markers.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(
            self,
            JournalRecord::CommitDone { .. }
                | JournalRecord::AbortDone { .. }
                | JournalRecord::ReleaseDone { .. }
                | JournalRecord::RepairDone { .. }
        )
    }
}

/// The write-ahead intent journal of one shard worker.
///
/// When disabled (the negative-control configuration) every append is
/// dropped, so a crashed worker restarts from an empty partition and
/// the differential harness observes the lost reservations.
#[derive(Clone, Debug, Default)]
pub struct IntentJournal {
    enabled: bool,
    records: Vec<JournalRecord>,
}

impl IntentJournal {
    /// A journal; `enabled = false` turns every append into a no-op.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        IntentJournal {
            enabled,
            records: Vec::new(),
        }
    }

    /// Whether appends are being retained.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends one record (no-op when disabled). Callers append the
    /// intent **before** mutating and the done marker after.
    pub fn append(&mut self, record: JournalRecord) {
        if self.enabled {
            self.records.push(record);
        }
    }

    /// The records in append order.
    #[must_use]
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of retained records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// `CommitDone` markers per transaction key — the exactly-once
    /// ledger's raw material: a key appearing more than once on one
    /// shard is a double reservation.
    #[must_use]
    pub fn commit_done_counts(&self) -> BTreeMap<OpKey, u32> {
        let mut out = BTreeMap::new();
        for r in &self.records {
            if let JournalRecord::CommitDone { key } = r {
                *out.entry(*key).or_insert(0) += 1;
            }
        }
        out
    }

    /// The dangling intent at the tail — the transaction a crash
    /// interrupted — if the last intent has no matching done marker.
    #[must_use]
    pub fn dangling(&self) -> Option<&JournalRecord> {
        let last = self.records.last()?;
        match last {
            JournalRecord::CommitIntent { .. }
            | JournalRecord::AbortIntent { .. }
            | JournalRecord::ReleaseIntent { .. }
            | JournalRecord::RepairIntent { .. } => Some(last),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit_intent(key: OpKey) -> JournalRecord {
        JournalRecord::CommitIntent {
            key,
            spec: AdmitSpec::test_default(),
            hops: Vec::new(),
        }
    }

    #[test]
    fn disabled_journal_drops_appends() {
        let mut j = IntentJournal::new(false);
        j.append(commit_intent((0, 1)));
        assert!(j.is_empty());
        assert!(!j.enabled());
        assert!(j.dangling().is_none());
    }

    #[test]
    fn dangling_intent_is_the_unfinished_tail() {
        let mut j = IntentJournal::new(true);
        j.append(commit_intent((0, 1)));
        assert!(matches!(
            j.dangling(),
            Some(JournalRecord::CommitIntent { key: (0, 1), .. })
        ));
        j.append(JournalRecord::CommitDone { key: (0, 1) });
        assert!(j.dangling().is_none(), "done marker closes the intent");
        j.append(JournalRecord::Voted {
            key: (0, 2),
            votes: Vec::new(),
        });
        assert!(j.dangling().is_none(), "votes never dangle (non-mutating)");
    }

    #[test]
    fn commit_done_counts_expose_duplicates() {
        let mut j = IntentJournal::new(true);
        for key in [(0, 1), (0, 2), (0, 1)] {
            j.append(commit_intent(key));
            j.append(JournalRecord::CommitDone { key });
        }
        let counts = j.commit_done_counts();
        assert_eq!(counts.get(&(0, 1)), Some(&2), "duplicate visible");
        assert_eq!(counts.get(&(0, 2)), Some(&1));
        assert_eq!(j.len(), 6);
        assert_eq!(j.records().iter().filter(|r| r.is_done()).count(), 3);
        assert_eq!(j.records()[0].key(), (0, 1));
    }
}
