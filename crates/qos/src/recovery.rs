//! Guarantee-preserving recovery: hot table repair plus re-admission
//! through a graceful-degradation ladder.
//!
//! The [`RecoveryManager`] is the control-plane reaction to the fault
//! layer (`iba_sim::fault`): when a VLArb table is damaged — entry
//! loss, garbled weights, orphaned or colliding sequences — it
//!
//! 1. **detects** the damage via the table's own
//!    `check_consistency` (the repair pass reports `was_damaged`);
//! 2. **repairs** in place: evicts untrustworthy sequences, rebuilds
//!    the slot array and re-packs the survivors with the canonical
//!    bit-reversal defragmentation ([`iba_core::HighPriorityTable::repair`]);
//! 3. **re-admits** every evicted reservation, first at its contracted
//!    distance, then escalating through [`iba_core::Distance::looser`]
//!    — a degraded-but-served reservation beats a dropped one;
//! 4. retries admissions a bounded number of times with deterministic
//!    exponential backoff and jitter from the core SplitMix64 rng,
//!    defragmenting between attempts.
//!
//! Everything is seeded and deterministic: the same damage and seed
//! produce byte-identical recovery decisions, which is what lets the
//! chaos harness assert exact outcomes.

use crate::cac::PortTables;
use crate::retry::{Backoff, RetryPolicy};
use iba_core::{
    Admission, Distance, HighPriorityTable, ServiceLevel, TableError, VirtualLane, Weight,
};

/// Tunables of the recovery ladder.
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Bounded retry attempts per admission (on top of the first try).
    pub max_retries: u32,
    /// Base backoff in cycles; attempt `n` waits `base << n`
    /// (saturating, via [`crate::retry::saturating_backoff`]) plus
    /// jitter in `[0, base)`.
    pub backoff_base: u64,
    /// How many [`Distance::looser`] steps the degradation ladder may
    /// take before declaring the reservation lost.
    pub max_degrade_steps: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base: 1024,
            max_degrade_steps: 5,
        }
    }
}

/// Counters accumulated across every recovery action.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Repair passes that found (and fixed) damage.
    pub repairs: u64,
    /// Sequences evicted by repair passes.
    pub evicted: u64,
    /// Evicted reservations successfully re-installed.
    pub reinstalled: u64,
    /// Reservations re-installed at a loosened (degraded) distance.
    pub degraded: u64,
    /// Reservations the ladder could not place anywhere.
    pub lost: u64,
    /// Admission retries performed.
    pub retries: u64,
    /// Total deterministic backoff cycles accumulated by retries.
    pub backoff_cycles: u64,
}

/// Outcome of one [`RecoveryManager::repair_all`] sweep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Tables inspected.
    pub tables: usize,
    /// Tables that were damaged and repaired.
    pub repaired: usize,
    /// Sequences evicted across all tables.
    pub evicted: usize,
    /// Evictions re-installed (at contracted or degraded distance).
    pub reinstalled: usize,
    /// Evictions lost (no placement up the whole ladder).
    pub lost: usize,
}

/// The recovery manager: owns the seeded rng, the policy and the
/// lifetime stats. One instance drives any number of tables.
#[derive(Clone, Debug)]
pub struct RecoveryManager {
    backoff: Backoff,
    policy: RecoveryPolicy,
    stats: RecoveryStats,
}

impl RecoveryManager {
    /// A manager with the default policy.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_policy(seed, RecoveryPolicy::default())
    }

    /// A manager with an explicit policy.
    #[must_use]
    pub fn with_policy(seed: u64, policy: RecoveryPolicy) -> Self {
        RecoveryManager {
            backoff: Backoff::new(
                seed ^ 0x5EC0_4E4F_1A2B_3C4D,
                RetryPolicy {
                    max_retries: policy.max_retries,
                    backoff_base: policy.backoff_base,
                },
            ),
            policy,
            stats: RecoveryStats::default(),
        }
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &RecoveryStats {
        &self.stats
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Repairs one table and re-admits what the repair evicted.
    ///
    /// Returns the per-table summary (`tables == 1`). Postcondition:
    /// the table passes `check_consistency` — the repair itself never
    /// fails; only re-admission can degrade or lose reservations.
    pub fn repair_table(
        &mut self,
        table: &mut HighPriorityTable,
        rec: &mut dyn iba_obs::Recorder,
    ) -> RecoverySummary {
        let report = table.repair();
        let mut summary = RecoverySummary {
            tables: 1,
            ..RecoverySummary::default()
        };
        if !report.was_damaged && report.evicted.is_empty() {
            return summary;
        }
        summary.repaired = 1;
        summary.evicted = report.evicted.len();
        self.stats.repairs += 1;
        self.stats.evicted += report.evicted.len() as u64;
        rec.recovery_repair(report.evicted.len() as u64);
        for ev in &report.evicted {
            if ev.weight == 0 || ev.connections == 0 {
                // Damage debris, not a live reservation: nothing to
                // re-install.
                continue;
            }
            if self.reinstall(table, ev.sl, ev.vl, ev.distance, ev.weight, rec) {
                summary.reinstalled += 1;
            } else {
                summary.lost += 1;
            }
        }
        summary
    }

    /// Repairs every touched table of a registry in deterministic key
    /// order.
    pub fn repair_all(
        &mut self,
        tables: &mut PortTables,
        rec: &mut dyn iba_obs::Recorder,
    ) -> RecoverySummary {
        let mut total = RecoverySummary::default();
        for key in tables.sorted_keys() {
            let Some(t) = tables.get_table_mut(key) else {
                continue;
            };
            let s = self.repair_table(t, rec);
            total.tables += s.tables;
            total.repaired += s.repaired;
            total.evicted += s.evicted;
            total.reinstalled += s.reinstalled;
            total.lost += s.lost;
        }
        total
    }

    /// Graceful-degradation ladder: contracted distance first, then
    /// each [`Distance::looser`] step (bounded by the policy). Every
    /// loosening is metered as a degradation.
    fn reinstall(
        &mut self,
        table: &mut HighPriorityTable,
        sl: ServiceLevel,
        vl: VirtualLane,
        contracted: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> bool {
        let mut distance = contracted;
        for step in 0..=self.policy.max_degrade_steps {
            match self.admit_with_retry(table, sl, vl, distance, weight, rec) {
                Ok(_) => {
                    rec.recovery_reinstall();
                    self.stats.reinstalled += 1;
                    return true;
                }
                Err(TableError::NoFreeSequence | TableError::CapacityExceeded) => {
                    let Some(looser) = distance.looser() else {
                        break;
                    };
                    if step == self.policy.max_degrade_steps {
                        break;
                    }
                    rec.recovery_degraded();
                    self.stats.degraded += 1;
                    distance = looser;
                }
                Err(_) => break,
            }
        }
        self.stats.lost += 1;
        false
    }

    /// Bounded-retry admission with deterministic exponential backoff
    /// and jitter. Between attempts the table is defragmented — the
    /// realistic analogue of "wait for churn to free capacity, then
    /// try again", kept deterministic by the seeded rng.
    pub fn admit_with_retry(
        &mut self,
        table: &mut HighPriorityTable,
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<Admission, TableError> {
        let mut attempt = 0u32;
        loop {
            match table.admit_observed(sl, vl, distance, weight, rec) {
                Ok(a) => return Ok(a),
                Err(e @ (TableError::NoFreeSequence | TableError::CapacityExceeded)) => {
                    if self.backoff.exhausted(attempt) {
                        return Err(e);
                    }
                    let backoff = self.backoff.delay(attempt);
                    rec.recovery_retry(backoff);
                    self.stats.retries += 1;
                    self.stats.backoff_cycles = self.stats.backoff_cycles.saturating_add(backoff);
                    table.defragment();
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::SplitMix64;
    use iba_obs::{NullRecorder, ObsRecorder};

    fn sl(i: u8) -> ServiceLevel {
        ServiceLevel::new(i).unwrap()
    }
    fn vl(i: u8) -> VirtualLane {
        VirtualLane::data(i)
    }

    fn filled(seed: u64) -> HighPriorityTable {
        let mut t = HighPriorityTable::new();
        let mut rng = SplitMix64::seed_from_u64(seed);
        for k in 0..8u8 {
            let d = match rng.next_u64() % 3 {
                0 => Distance::D16,
                1 => Distance::D32,
                _ => Distance::D64,
            };
            let w = 10 + (rng.next_u64() % 60) as u32;
            let _ = t.admit(sl(k % 10), vl(k % 10), d, w);
        }
        t
    }

    #[test]
    fn healthy_table_is_left_alone() {
        let mut t = filled(1);
        let before = t.reserved_weight();
        let mut mgr = RecoveryManager::new(7);
        let s = mgr.repair_table(&mut t, &mut NullRecorder);
        assert_eq!(s.repaired, 0);
        assert_eq!(s.evicted, 0);
        assert_eq!(t.reserved_weight(), before);
        assert_eq!(mgr.stats().repairs, 0);
    }

    #[test]
    fn repair_restores_consistency_and_reinstalls() {
        // Seeded property sweep: damage then recover, always ending
        // consistent; reinstalled + lost must account for every live
        // eviction.
        for seed in 0..100u64 {
            let mut t = filled(seed);
            let reserved_before = t.reserved_weight();
            let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFEED);
            t.inject_corruption(&mut rng);
            let mut mgr = RecoveryManager::new(seed);
            let s = mgr.repair_table(&mut t, &mut NullRecorder);
            t.check_consistency()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(s.reinstalled + s.lost <= s.evicted);
            // Recovered capacity never exceeds what was reserved.
            assert!(t.reserved_weight() <= reserved_before);
        }
    }

    #[test]
    fn degradation_ladder_loosens_distance() {
        // Fill the table so the contracted distance has no free set but
        // a looser one does: 32 single-slot D64 sequences on distinct
        // SLs occupy the canonical bit-reversal prefix, leaving no free
        // D2 set but plenty of looser capacity.
        let mut t = HighPriorityTable::new();
        for k in 0..33u8 {
            let _ = t.admit(sl(k % 10), vl(k % 10), Distance::D64, 255);
        }
        let mut mgr = RecoveryManager::new(3);
        let mut rec = ObsRecorder::new();
        // D2 needs 32 aligned slots; it cannot fit, so the ladder must
        // loosen until an admissible distance is found.
        assert!(!t.can_admit(sl(0), Distance::D2, 32));
        let ok = mgr.reinstall(&mut t, sl(0), vl(0), Distance::D2, 32, &mut rec);
        assert!(ok, "ladder should find a looser placement");
        assert!(mgr.stats().degraded > 0);
        assert!(rec.metrics.recovery_degraded.get() > 0);
        assert_eq!(rec.metrics.recovery_reinstalls.get(), 1);
        t.check_consistency().unwrap();
    }

    #[test]
    fn retry_backoff_is_deterministic_and_bounded() {
        let run = || {
            let mut t = HighPriorityTable::new();
            // Saturate capacity so every admission fails.
            t.set_capacity_limit(10);
            let _ = t.admit(sl(0), vl(0), Distance::D64, 10);
            let mut mgr = RecoveryManager::new(42);
            let mut rec = ObsRecorder::new();
            let err = mgr
                .admit_with_retry(&mut t, sl(1), vl(1), Distance::D64, 10, &mut rec)
                .unwrap_err();
            assert_eq!(err, TableError::CapacityExceeded);
            (
                mgr.stats().retries,
                mgr.stats().backoff_cycles,
                rec.metrics.recovery_retries.get(),
            )
        };
        let (retries, backoff, metered) = run();
        assert_eq!(retries, RecoveryPolicy::default().max_retries as u64);
        assert_eq!(retries, metered);
        // Exponential: total exceeds max_retries * base.
        assert!(backoff > retries * RecoveryPolicy::default().backoff_base);
        assert_eq!((retries, backoff, metered), run(), "must be deterministic");
    }

    #[test]
    fn repair_all_sweeps_every_touched_table() {
        let mut pt = PortTables::new(0.8);
        use crate::cac::PortKey;
        use iba_sim::NodeId;
        let keys = [
            PortKey {
                node: NodeId::Switch(0),
                port: 1,
            },
            PortKey {
                node: NodeId::Host(2),
                port: 0,
            },
        ];
        for (i, k) in keys.iter().enumerate() {
            pt.admit_path(&[*k], sl(i as u8), vl(i as u8), Distance::D16, 40)
                .unwrap();
        }
        let mut mgr = RecoveryManager::new(5);
        let s = mgr.repair_all(&mut pt, &mut NullRecorder);
        assert_eq!(s.tables, 2);
        assert_eq!(s.repaired, 0);
        pt.check_all().unwrap();
    }
}
