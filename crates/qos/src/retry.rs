//! Shared deterministic retry machinery: bounded attempts with
//! saturating exponential backoff and seeded jitter.
//!
//! Promoted out of `recovery.rs` so that both the data-plane
//! [`crate::recovery::RecoveryManager`] and the control-plane
//! coordinator timeouts in [`crate::service`] draw their backoff
//! schedule from one implementation. Everything here is a pure
//! function of the seed and the attempt number — no wall-clock, no
//! global state — which is what keeps faulted runs byte-reproducible.
//!
//! The growth curve is `base << attempt` **saturating**: a checked
//! shift that clamps to `u64::MAX` instead of wrapping. The previous
//! in-line implementation clamped the exponent (`attempt.min(16)`) but
//! still wrapped for large bases (`base << 16` overflows any base
//! above `2^48`); see `backoff_saturates_at_large_attempts`.

use iba_core::SplitMix64;

/// Tunables of a bounded retry schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Bounded retry attempts (on top of the first try).
    pub max_retries: u32,
    /// Base backoff in cycles; attempt `n` waits `base << n`
    /// (saturating) plus jitter in `[0, base)`.
    pub backoff_base: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base: 1024,
        }
    }
}

/// Saturating exponential growth: `base << attempt`, clamped to
/// `u64::MAX` on overflow of either the shift or the product.
///
/// `base` is clamped up to 1 so the schedule always advances.
#[must_use]
pub fn saturating_backoff(base: u64, attempt: u32) -> u64 {
    let base = base.max(1);
    match 1u64.checked_shl(attempt) {
        Some(multiplier) => base.saturating_mul(multiplier),
        None => u64::MAX,
    }
}

/// A seeded backoff schedule: owns the jitter rng and the policy.
///
/// Deterministic: the same seed and the same call sequence produce the
/// same delays. One instance serves one retry domain (a recovery
/// manager, a coordinator); delays are metered by the caller.
#[derive(Clone, Debug)]
pub struct Backoff {
    rng: SplitMix64,
    policy: RetryPolicy,
}

impl Backoff {
    /// A schedule seeded with `seed` (callers apply their own domain
    /// mixing before passing it in).
    #[must_use]
    pub fn new(seed: u64, policy: RetryPolicy) -> Self {
        Backoff {
            rng: SplitMix64::seed_from_u64(seed),
            policy,
        }
    }

    /// The policy in force.
    #[must_use]
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// True when `attempt` has used up the retry budget.
    #[must_use]
    pub fn exhausted(&self, attempt: u32) -> bool {
        attempt >= self.policy.max_retries
    }

    /// The delay before retry number `attempt`:
    /// `saturating_backoff(base, attempt)` plus jitter in `[0, base)`.
    ///
    /// Advances the jitter rng, so call order matters for
    /// reproducibility.
    pub fn delay(&mut self, attempt: u32) -> u64 {
        let base = self.policy.backoff_base.max(1);
        saturating_backoff(base, attempt).saturating_add(self.rng.next_u64() % base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_at_small_attempts() {
        assert_eq!(saturating_backoff(1024, 0), 1024);
        assert_eq!(saturating_backoff(1024, 1), 2048);
        assert_eq!(saturating_backoff(1024, 3), 8192);
        // Zero base is clamped so the schedule still advances.
        assert_eq!(saturating_backoff(0, 4), 16);
    }

    #[test]
    fn backoff_saturates_at_large_attempts() {
        // Satellite regression: the old `base << attempt.min(16)`
        // wrapped for large bases and silently clamped the exponent.
        // The saturating form must clamp to u64::MAX instead, for any
        // attempt >= 60 and for shift counts past the word size.
        assert_eq!(saturating_backoff(1024, 60), u64::MAX);
        assert_eq!(saturating_backoff(1024, 63), u64::MAX);
        assert_eq!(saturating_backoff(1024, 64), u64::MAX);
        assert_eq!(saturating_backoff(1024, u32::MAX), u64::MAX);
        assert_eq!(saturating_backoff(u64::MAX, 1), u64::MAX);
        // Large base, small attempt: the product (not the shift)
        // overflows — this is the wrap the old code missed.
        assert_eq!(saturating_backoff(1 << 60, 16), u64::MAX);
        // Still exact below the saturation point.
        assert_eq!(saturating_backoff(1 << 60, 3), 1 << 63);
    }

    #[test]
    fn schedule_is_deterministic_and_jittered() {
        let policy = RetryPolicy::default();
        let run = || {
            let mut b = Backoff::new(42, policy);
            (0..4).map(|a| b.delay(a)).collect::<Vec<_>>()
        };
        let delays = run();
        assert_eq!(delays, run(), "same seed must give the same schedule");
        for (attempt, d) in delays.iter().enumerate() {
            let floor = saturating_backoff(policy.backoff_base, attempt as u32);
            assert!(*d >= floor && *d < floor + policy.backoff_base);
        }
        let mut other = Backoff::new(43, policy);
        let other_delays: Vec<u64> = (0..4).map(|a| other.delay(a)).collect();
        assert_ne!(delays, other_delays, "different seeds should jitter apart");
    }

    #[test]
    fn delay_never_panics_at_extreme_attempts() {
        let mut b = Backoff::new(
            7,
            RetryPolicy {
                max_retries: 100,
                backoff_base: u64::MAX,
            },
        );
        assert_eq!(b.delay(200), u64::MAX, "saturates, never wraps");
        assert!(b.exhausted(100));
        assert!(!b.exhausted(99));
    }
}
