//! # iba-qos — the end-to-end QoS frame
//!
//! Ties the arbitration tables (`iba-core`), the fabric simulator
//! (`iba-sim`), topologies (`iba-topo`) and workloads (`iba-traffic`)
//! into the paper's "global frame to provide the required QoS for each
//! possible kind of application traffic":
//!
//! * [`cac`] — per-output-port table registry and the multi-hop
//!   admission transaction (reserve at every hop or roll back);
//! * [`connection`] — admitted connection records (path, per-hop
//!   sequences, deadline);
//! * [`manager`] — the subnet-manager-like entity owning all tables,
//!   admitting/tearing down connections and pushing `VLArbitrationTable`
//!   configurations into a simulated fabric;
//! * [`measure`] — a simulator observer that aggregates the paper's
//!   metrics (delay vs deadline per SL and per connection, jitter);
//! * [`frame`] — one-call experiment orchestration: fill the network to
//!   its admission limit and produce the flows and fabric to run;
//! * [`recovery`] — guarantee-preserving recovery: hot table repair,
//!   re-admission through a graceful-degradation ladder, and bounded
//!   retry with deterministic backoff;
//! * [`retry`] — the shared deterministic retry machinery: saturating
//!   exponential backoff with seeded jitter, used by both [`recovery`]
//!   and the [`service`] coordinator timeouts;
//! * [`journal`] — the per-shard write-ahead intent journal that makes
//!   shard-worker crashes survivable: intents are appended before any
//!   table mutation and replayed on supervised restart;
//! * [`service`] — the sharded admission service: port tables
//!   partitioned across exclusive worker threads, batched multi-hop
//!   admission with vote/commit/abort, byte-identical to the
//!   single-owner manager at any shard count, and a deterministic
//!   control-plane fault engine (crashes, vote loss/delay, reply loss)
//!   survived via journal replay, idempotent retries and a bounded
//!   admission queue with a load-shedding ladder.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cac;
pub mod churn;
pub mod connection;
pub mod frame;
pub mod journal;
pub mod manager;
pub mod measure;
pub mod recovery;
pub mod retry;
pub mod service;

pub use cac::{PortKey, PortTables, RejectReason};
pub use churn::{ChurnEvent, ChurnRunner, ChurnStats};
pub use connection::{Connection, ConnectionId};
pub use frame::{FillReport, QosFrame};
pub use journal::{IntentJournal, JournalRecord, OpKey};
pub use manager::{LowPriorityPolicy, QosManager};
pub use measure::QosObserver;
pub use recovery::{RecoveryManager, RecoveryPolicy, RecoveryStats, RecoverySummary};
pub use retry::{saturating_backoff, Backoff, RetryPolicy};
pub use service::{
    apply_trace_sequential, generate_trace, run_trace, run_trace_faulted, FaultStats, ServeFault,
    ServeFaultPlan, ServeOptions, ServeReport, TraceConfig, TraceOp, TraceOutcome,
};
