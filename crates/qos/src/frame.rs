//! One-call experiment orchestration: fill the fabric with connections
//! up to its admission limit, then produce the flows, the configured
//! fabric and the measurement observer.

use crate::manager::QosManager;
use crate::measure::QosObserver;
use iba_core::rng::SplitMix64;
use iba_core::SlTable;
use iba_sim::{Fabric, FlowSpec, SimConfig};
use iba_topo::{RoutingTable, Topology};
use iba_traffic::besteffort::{background_flows, BackgroundConfig};
use iba_traffic::{flow_for_connection, RequestGenerator};

/// First flow id used for background traffic (QoS connection ids are
/// dense from 0, so this never collides).
pub const BACKGROUND_FLOW_BASE: u32 = 1_000_000;

/// Outcome of the fill phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct FillReport {
    /// Requests attempted.
    pub attempted: u32,
    /// Requests admitted.
    pub accepted: u32,
    /// Aggregate offered load of the admitted connections, in
    /// bytes/cycle (sum over sources).
    pub offered_load: f64,
}

/// The global QoS frame: a manager plus the simulation configuration,
/// with helpers to run the paper's experiment sequence.
#[derive(Clone, Debug)]
pub struct QosFrame {
    /// The subnet manager (tables + connections).
    pub manager: QosManager,
    sim_config: SimConfig,
}

impl QosFrame {
    /// New frame over a topology with the paper's defaults.
    #[must_use]
    pub fn new(
        topo: Topology,
        routing: RoutingTable,
        sl_table: SlTable,
        sim_config: SimConfig,
    ) -> Self {
        QosFrame {
            manager: QosManager::new(topo, routing, sl_table),
            sim_config,
        }
    }

    /// Frame around an existing manager (ablations pick their own
    /// allocator / QoS share).
    #[must_use]
    pub fn with_manager(manager: QosManager, sim_config: SimConfig) -> Self {
        QosFrame {
            manager,
            sim_config,
        }
    }

    /// The simulation configuration.
    #[must_use]
    pub fn sim_config(&self) -> &SimConfig {
        &self.sim_config
    }

    /// Mutable access to the simulation configuration (differential
    /// tests flip [`iba_sim::ArbiterMode`] here before building the
    /// fabric).
    pub fn sim_config_mut(&mut self) -> &mut SimConfig {
        &mut self.sim_config
    }

    /// Establishes connections from the generator until
    /// `stop_after_rejects` consecutive rejections (the network is then
    /// "quasi-fully loaded") or `max_attempts` total attempts.
    pub fn fill(
        &mut self,
        gen: &mut RequestGenerator,
        stop_after_rejects: u32,
        max_attempts: u32,
    ) -> FillReport {
        self.fill_observed(
            gen,
            stop_after_rejects,
            max_attempts,
            &mut iba_obs::NullRecorder,
        )
    }

    /// [`QosFrame::fill`] with instrumentation: every admission attempt
    /// records its `cac_admit_total` / `cac_reject_total` outcome and
    /// the allocator probe metrics of each hop into `rec`.
    pub fn fill_observed(
        &mut self,
        gen: &mut RequestGenerator,
        stop_after_rejects: u32,
        max_attempts: u32,
        rec: &mut dyn iba_obs::Recorder,
    ) -> FillReport {
        let mut report = FillReport::default();
        let mut consecutive = 0;
        while report.attempted < max_attempts && consecutive < stop_after_rejects {
            let req = gen.next_request();
            report.attempted += 1;
            match self.manager.request_observed(&req, rec) {
                Ok(_) => {
                    report.accepted += 1;
                    consecutive = 0;
                }
                Err(_) => consecutive += 1,
            }
        }
        report.offered_load = self
            .manager
            .connections()
            .map(|(_, c)| f64::from(c.request.packet_bytes) / c.interarrival as f64)
            .sum();
        report
    }

    /// CBR flows for every admitted connection, with deterministic
    /// random phases.
    #[must_use]
    pub fn qos_flows(&self, phase_seed: u64) -> Vec<FlowSpec> {
        let mut rng = SplitMix64::seed_from_u64(phase_seed);
        self.manager
            .connections()
            .map(|(_, c)| {
                let phase = rng.gen_range(0..c.interarrival.max(1));
                flow_for_connection(&c.request, phase)
            })
            .collect()
    }

    /// Builds the configured fabric: arbitration tables applied, QoS
    /// flows added, optional best-effort background added. Returns the
    /// fabric and an observer pre-registered with every connection.
    #[must_use]
    pub fn build_fabric(
        &self,
        phase_seed: u64,
        background: Option<&BackgroundConfig>,
    ) -> (Fabric, QosObserver) {
        let mut fabric = Fabric::new(
            self.manager.topology().clone(),
            self.manager.routing().clone(),
            self.sim_config.clone(),
        );
        self.manager.apply_tables(&mut fabric);
        for flow in self.qos_flows(phase_seed) {
            fabric.add_flow(flow);
        }
        if let Some(bg) = background {
            for flow in background_flows(self.manager.topology(), bg, BACKGROUND_FLOW_BASE) {
                fabric.add_flow(flow);
            }
        }
        let observer = QosObserver::from_manager(&self.manager);
        (fabric, observer)
    }

    /// The smallest interarrival-time-normalised measurement horizon:
    /// the paper runs the steady state "until the connection with a
    /// smaller mean bandwidth has received N packets"; this returns the
    /// number of cycles needed for the slowest connection to emit
    /// `packets` packets.
    #[must_use]
    pub fn steady_state_cycles(&self, packets: u64) -> u64 {
        self.manager
            .connections()
            .map(|(_, c)| c.interarrival * packets)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_topo::{irregular, updown};
    use iba_traffic::WorkloadConfig;

    fn small_frame(seed: u64) -> QosFrame {
        let topo = irregular::generate(irregular::IrregularConfig::with_switches(4, seed));
        let routing = updown::compute(&topo);
        QosFrame::new(
            topo,
            routing,
            SlTable::paper_table1(),
            SimConfig::paper_default(256),
        )
    }

    #[test]
    fn fill_admits_until_saturation() {
        let mut f = small_frame(1);
        let topo = f.manager.topology().clone();
        let mut gen = RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 42),
        );
        let report = f.fill(&mut gen, 40, 5000);
        assert!(report.accepted > 20, "only {} accepted", report.accepted);
        assert!(report.attempted > report.accepted);
        assert!(report.offered_load > 0.0);
        f.manager.port_tables().check_all().unwrap();
    }

    #[test]
    fn flows_match_connections() {
        let mut f = small_frame(2);
        let topo = f.manager.topology().clone();
        let mut gen = RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 42),
        );
        f.fill(&mut gen, 20, 300);
        let flows = f.qos_flows(9);
        assert_eq!(flows.len(), f.manager.live_connections());
        // Phases are deterministic.
        let again = f.qos_flows(9);
        for (a, b) in flows.iter().zip(&again) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.id, b.id);
        }
    }

    #[test]
    fn build_fabric_registers_observer() {
        let mut f = small_frame(3);
        let topo = f.manager.topology().clone();
        let mut gen = RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 1),
        );
        f.fill(&mut gen, 20, 200);
        let (fabric, obs) = f.build_fabric(7, Some(&BackgroundConfig::default()));
        assert_eq!(obs.registered(), f.manager.live_connections());
        assert_eq!(fabric.now(), 0);
    }

    #[test]
    fn steady_state_tracks_slowest_connection() {
        let mut f = small_frame(4);
        let topo = f.manager.topology().clone();
        let mut gen = RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 2),
        );
        f.fill(&mut gen, 20, 100);
        let max_iat = f
            .manager
            .connections()
            .map(|(_, c)| c.interarrival)
            .max()
            .unwrap();
        assert_eq!(f.steady_state_cycles(10), max_iat * 10);
    }
}
