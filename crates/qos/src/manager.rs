//! The subnet QoS manager: owns every output port's tables, admits and
//! tears down connections, and pushes the resulting
//! `VLArbitrationTable` configurations into a simulated fabric.

use crate::cac::{PortKey, PortTables, RejectReason};
use crate::connection::{Connection, ConnectionId};
use iba_core::{sl, AllocatorKind, ArbEntry, SlTable, SlToVlMap, VlArbConfig};
use iba_sim::{Fabric, NodeId, LINK_1X_MBPS};
use iba_topo::{HostId, PortPeer, RoutingTable, SwitchId, Topology};
use iba_traffic::ConnectionRequest;

/// Configuration of the low-priority table shared by all ports: one
/// entry per best-effort class, weighted by preference (PBE over BE over
/// CH), plus the `LimitOfHighPriority` value.
#[derive(Clone, Debug)]
pub struct LowPriorityPolicy {
    /// Low-priority table entries.
    pub entries: Vec<ArbEntry>,
    /// `LimitOfHighPriority` (255 = unlimited: low priority served only
    /// when the high-priority table is idle, which the 80% reservation
    /// cap guarantees happens regularly).
    pub limit_of_high_priority: u8,
}

impl Default for LowPriorityPolicy {
    fn default() -> Self {
        Self::for_map(&SlToVlMap::identity())
    }
}

impl LowPriorityPolicy {
    /// The standard best-effort policy expressed over a given SL→VL
    /// mapping: PBE over BE over CH, on whatever lanes the mapping
    /// assigns those SLs.
    #[must_use]
    pub fn for_map(map: &SlToVlMap) -> Self {
        // The best-effort SL constants are all valid (<= 12).
        let vl_of = |s: u8| {
            iba_core::ServiceLevel::new(s)
                .map(|sl| map.vl(sl))
                .unwrap_or(iba_core::VirtualLane::VL15)
        };
        LowPriorityPolicy {
            entries: vec![
                ArbEntry {
                    vl: vl_of(sl::SL_PBE),
                    weight: 64,
                },
                ArbEntry {
                    vl: vl_of(sl::SL_BE),
                    weight: 16,
                },
                ArbEntry {
                    vl: vl_of(sl::SL_CH),
                    weight: 2,
                },
            ],
            limit_of_high_priority: 255,
        }
    }
}

/// What admission will actually reserve for a request: the resolved
/// lane, the (possibly tightened) distance, the gross table weight and
/// the output ports crossed, in canonical path order.
#[derive(Clone, Debug)]
pub(crate) struct AdmitPlan {
    /// The virtual lane the SL maps to.
    pub(crate) vl: iba_core::VirtualLane,
    /// The reserved entry spacing.
    pub(crate) distance: iba_core::Distance,
    /// Table weight covering the gross (wire) rate.
    pub(crate) weight: iba_core::Weight,
    /// Output ports from source uplink to the destination-facing
    /// switch port.
    pub(crate) path: Vec<PortKey>,
}

/// The QoS manager for one subnet.
#[derive(Clone, Debug)]
pub struct QosManager {
    topo: Topology,
    routing: RoutingTable,
    sl_table: SlTable,
    sl_to_vl: SlToVlMap,
    tables: PortTables,
    connections: Vec<Option<Connection>>,
    low: LowPriorityPolicy,
    link_mbps: f64,
    header_bytes: u32,
    accepted: u64,
    rejected: u64,
}

impl QosManager {
    /// Manager with the paper's defaults: bit-reversal allocator, 80%
    /// QoS share, identity SL→VL mapping, 1x links.
    #[must_use]
    pub fn new(topo: Topology, routing: RoutingTable, sl_table: SlTable) -> Self {
        Self::with_allocator(topo, routing, sl_table, AllocatorKind::BitReversal, 0.8)
    }

    /// Manager with an explicit allocation policy and QoS share
    /// (ablations).
    #[must_use]
    pub fn with_allocator(
        topo: Topology,
        routing: RoutingTable,
        sl_table: SlTable,
        allocator: AllocatorKind,
        qos_fraction: f64,
    ) -> Self {
        QosManager {
            topo,
            routing,
            sl_table,
            sl_to_vl: SlToVlMap::identity(),
            tables: PortTables::with_allocator(allocator, qos_fraction),
            connections: Vec::new(),
            low: LowPriorityPolicy::default(),
            link_mbps: LINK_1X_MBPS,
            header_bytes: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Declares the per-packet wire overhead the fabric adds (see
    /// `iba_sim::SimConfig::header_bytes`): reservations are then made
    /// for the *gross* rate, `bandwidth · (payload + header) / payload`,
    /// so the guarantee covers the headers too.
    pub fn set_header_bytes(&mut self, header_bytes: u32) {
        self.header_bytes = header_bytes;
    }

    /// Overrides the low-priority policy.
    pub fn set_low_priority_policy(&mut self, policy: LowPriorityPolicy) {
        self.low = policy;
    }

    /// Installs a non-identity SL→VL mapping (a fabric with fewer VLs).
    ///
    /// Per §3.2 of the paper, when several SLs share a VL "we could use
    /// less SLs or enforce more restrictive requirements for some SLs":
    /// admission then reserves, for every connection, the **most
    /// restrictive distance among the SLs mapped to its VL**, so the
    /// shared lane still honours the strictest guarantee riding on it.
    ///
    /// Must be called before any connection is admitted.
    pub fn set_sl_to_vl(&mut self, map: SlToVlMap) {
        assert_eq!(
            self.live_connections(),
            0,
            "change the SL->VL mapping only on an empty subnet"
        );
        self.low = LowPriorityPolicy::for_map(&map);
        self.sl_to_vl = map;
    }

    /// The SL→VL mapping in force.
    #[must_use]
    pub fn sl_to_vl(&self) -> &SlToVlMap {
        &self.sl_to_vl
    }

    /// Overrides the link capacity (Mbps) used for weight computation —
    /// 2500 for 1x (the default), 10000 for 4x, 30000 for 12x.
    pub fn set_link_mbps(&mut self, mbps: f64) {
        assert!(mbps > 0.0);
        self.link_mbps = mbps;
    }

    /// The effective distance reserved for a connection of `sl`: the
    /// SL's own distance tightened to the most restrictive distance of
    /// any QoS SL sharing the same VL.
    #[must_use]
    pub fn effective_distance(&self, sl_id: iba_core::ServiceLevel) -> Option<iba_core::Distance> {
        let own = self.sl_table.profile(sl_id)?.distance?;
        let vl = self.sl_to_vl.vl(sl_id);
        let mut tightest = own;
        for p in self.sl_table.qos_profiles() {
            if self.sl_to_vl.vl(p.sl) == vl {
                if let Some(d) = p.distance {
                    if d.at_least_as_strict(tightest) {
                        tightest = d;
                    }
                }
            }
        }
        Some(tightest)
    }

    /// The SL configuration in force.
    #[must_use]
    pub fn sl_table(&self) -> &SlTable {
        &self.sl_table
    }

    /// The topology under management.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing tables in force.
    #[must_use]
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// (accepted, rejected) request counters.
    #[must_use]
    pub fn admission_counters(&self) -> (u64, u64) {
        (self.accepted, self.rejected)
    }

    /// The output ports a connection from `src` to `dst` crosses:
    /// the host's uplink, then every switch's output along the route
    /// (the last one faces the destination host).
    #[must_use]
    pub fn path_ports(&self, src: HostId, dst: HostId) -> Vec<PortKey> {
        let mut ports = vec![PortKey {
            node: NodeId::Host(src.0),
            port: 0,
        }];
        let path = self.routing.switch_path(&self.topo, src, dst);
        assert!(path.is_some(), "routing is complete: {src} -> {dst}");
        for s in path.into_iter().flatten() {
            ports.push(PortKey {
                node: NodeId::Switch(s.0),
                port: self.routing.port(s, dst),
            });
        }
        ports
    }

    /// Admits a connection request: reserves (SL, VL, distance, weight)
    /// in the high-priority table of every output port on the path, or
    /// rejects without side effects.
    pub fn request(&mut self, req: &ConnectionRequest) -> Result<ConnectionId, RejectReason> {
        self.request_observed(req, &mut iba_obs::NullRecorder)
    }

    /// Pure planning step shared by the synchronous path and the
    /// sharded admission service: resolves a request to the exact
    /// (VL, distance, weight, path) tuple admission will reserve, or
    /// the reject reason the manager would report, without touching
    /// any table or counter.
    pub(crate) fn plan_request(&self, req: &ConnectionRequest) -> Result<AdmitPlan, RejectReason> {
        // Reserve for the gross (wire) rate when headers are modelled.
        let gross_factor =
            f64::from(req.packet_bytes + self.header_bytes) / f64::from(req.packet_bytes);
        let weight =
            iba_core::weight_for_bandwidth(req.mean_bw_mbps * gross_factor, self.link_mbps)
                .ok_or(RejectReason::RequestTooLarge)?;
        let vl = self.sl_to_vl.vl(req.sl);
        // The reserved distance is the request's own, tightened when the
        // SL shares its VL with stricter SLs (see `set_sl_to_vl`).
        let distance = match self.effective_distance(req.sl) {
            Some(d) if d.at_least_as_strict(req.distance) => d,
            _ => req.distance,
        };
        Ok(AdmitPlan {
            vl,
            distance,
            weight,
            path: self.path_ports(req.src, req.dst),
        })
    }

    /// [`QosManager::request`] with instrumentation: records
    /// `cac_admit_total{sl}` or `cac_reject_total{reason}` plus the
    /// allocator probe metrics of every hop into `rec`.
    pub fn request_observed(
        &mut self,
        req: &ConnectionRequest,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<ConnectionId, RejectReason> {
        let AdmitPlan {
            vl,
            distance,
            weight,
            path,
        } = match self.plan_request(req) {
            Ok(p) => p,
            Err(e) => {
                self.rejected += 1;
                rec.cac_reject(e.kind());
                return Err(e);
            }
        };
        let hops = match self
            .tables
            .admit_path_observed(&path, req.sl, vl, distance, weight, rec)
        {
            Ok(h) => h,
            Err(e) => {
                self.rejected += 1;
                rec.cac_reject(e.kind());
                return Err(e);
            }
        };
        rec.cac_admit(req.sl.raw());
        // The deadline is the *application's* requirement (its own
        // distance); the reservation distance may be tighter when SLs
        // share a VL, which only improves service.
        let deadline = iba_traffic::request::deadline_with_transmission(
            req.distance,
            hops.len(),
            req.packet_bytes,
        );
        let conn = Connection {
            request: *req,
            weight,
            deadline,
            interarrival: req.interarrival(),
            hops,
        };
        let id = self
            .connections
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.connections.push(None);
                self.connections.len() - 1
            });
        self.connections[id] = Some(conn);
        self.accepted += 1;
        Ok(ConnectionId(id as u32))
    }

    /// Tears a connection down, releasing every hop (defragmentation
    /// runs automatically inside each table). Returns `false` for stale
    /// handles.
    pub fn teardown(&mut self, id: ConnectionId) -> bool {
        self.teardown_observed(id, &mut iba_obs::NullRecorder)
    }

    /// [`QosManager::teardown`] with instrumentation: records one
    /// `cac_release_total` when the handle was live.
    pub fn teardown_observed(&mut self, id: ConnectionId, rec: &mut dyn iba_obs::Recorder) -> bool {
        let Some(slot) = self.connections.get_mut(id.0 as usize) else {
            return false;
        };
        let Some(conn) = slot.take() else {
            return false;
        };
        // A failed release means the reservation was already evicted by
        // a repair pass; the connection record is gone either way, so
        // absorb the error instead of propagating a teardown failure.
        let _ = self.tables.release_path(&conn.hops, conn.weight);
        rec.cac_release();
        true
    }

    /// Deterministically corrupts every admitted table (fault
    /// injection): each touched port's table is damaged with a sub-seed
    /// derived from `seed` and its stable key order. Returns the number
    /// of damage operations applied.
    pub fn corrupt_tables(&mut self, seed: u64) -> usize {
        let mut rng = iba_core::SplitMix64::seed_from_u64(seed ^ 0x07AB_1EC0_5EED);
        let mut ops = 0;
        for key in self.tables.sorted_keys() {
            if let Some(t) = self.tables.get_table_mut(key) {
                ops += t.inject_corruption(&mut rng);
            }
        }
        ops
    }

    /// Runs `recovery` over every admitted table in deterministic key
    /// order: damaged tables are repaired in place and evicted
    /// reservations re-admitted through the degradation ladder. The
    /// repaired state still has to be pushed into a fabric with
    /// [`QosManager::apply_tables`].
    pub fn repair_tables(
        &mut self,
        recovery: &mut crate::recovery::RecoveryManager,
        rec: &mut dyn iba_obs::Recorder,
    ) -> crate::recovery::RecoverySummary {
        recovery.repair_all(&mut self.tables, rec)
    }

    /// A live connection.
    #[must_use]
    pub fn connection(&self, id: ConnectionId) -> Option<&Connection> {
        self.connections.get(id.0 as usize)?.as_ref()
    }

    /// All live connections.
    pub fn connections(&self) -> impl Iterator<Item = (ConnectionId, &Connection)> {
        self.connections
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (ConnectionId(i as u32), c)))
    }

    /// Number of live connections.
    #[must_use]
    pub fn live_connections(&self) -> usize {
        self.connections.iter().flatten().count()
    }

    /// Access to the raw port tables (reports, tests).
    #[must_use]
    pub fn port_tables(&self) -> &PortTables {
        &self.tables
    }

    /// Mutable access to the raw port tables (the sharded admission
    /// service's sequential reference path).
    pub(crate) fn tables_mut(&mut self) -> &mut PortTables {
        &mut self.tables
    }

    /// Builds the `VLArbitrationTable` configuration of one output port:
    /// its high-priority table as filled by admission (empty if never
    /// touched), plus the shared low-priority policy.
    #[must_use]
    pub fn arb_config_for(&self, key: PortKey) -> VlArbConfig {
        match self.tables.table(key) {
            Some(t) => VlArbConfig::from_slots(
                t.slots(),
                self.low.entries.clone(),
                self.low.limit_of_high_priority,
            ),
            None => VlArbConfig {
                high: Vec::new(),
                low: self.low.entries.clone(),
                limit_of_high_priority: self.low.limit_of_high_priority,
            },
        }
    }

    /// Pushes the current table state into every output port of a
    /// fabric (the subnet-management download step). Each download
    /// invalidates and recompiles that port's grant schedule.
    pub fn apply_tables(&self, fabric: &mut Fabric) {
        self.apply_tables_observed(fabric, &mut iba_obs::NullRecorder);
    }

    /// [`QosManager::apply_tables`] with instrumentation: every table
    /// download fires the recorder's schedule invalidate/compile hooks
    /// (`schedule_invalidate_total` / `schedule_compile_total`).
    pub fn apply_tables_observed(&self, fabric: &mut Fabric, rec: &mut dyn iba_obs::Recorder) {
        for s in self.topo.switch_ids() {
            for p in 0..self.topo.ports_per_switch() {
                if matches!(self.topo.peer(s, p), PortPeer::Free) {
                    continue;
                }
                let key = PortKey {
                    node: NodeId::Switch(s.0),
                    port: p,
                };
                fabric.set_output_table_recorded(key.node, p, self.arb_config_for(key), rec);
            }
        }
        for h in self.topo.host_ids() {
            let key = PortKey {
                node: NodeId::Host(h.0),
                port: 0,
            };
            fabric.set_output_table_recorded(key.node, 0, self.arb_config_for(key), rec);
        }
    }

    /// Mean reserved bandwidth (Mbps) over (host interfaces, switch
    /// ports) — the last two rows of Table 2. Host interfaces are the
    /// host uplinks and the switch→host downlinks; switch ports are the
    /// inter-switch outputs.
    #[must_use]
    pub fn reservation_summary(&self) -> (f64, f64) {
        let mut host_keys = Vec::new();
        let mut switch_keys = Vec::new();
        for h in self.topo.host_ids() {
            host_keys.push(PortKey {
                node: NodeId::Host(h.0),
                port: 0,
            });
        }
        for s in self.topo.switch_ids() {
            for p in 0..self.topo.ports_per_switch() {
                match self.topo.peer(s, p) {
                    PortPeer::Host(_) => host_keys.push(PortKey {
                        node: NodeId::Switch(s.0),
                        port: p,
                    }),
                    PortPeer::Switch { .. } => switch_keys.push(PortKey {
                        node: NodeId::Switch(s.0),
                        port: p,
                    }),
                    PortPeer::Free => {}
                }
            }
        }
        (
            self.tables
                .mean_reservation_mbps(&host_keys, self.link_mbps),
            self.tables
                .mean_reservation_mbps(&switch_keys, self.link_mbps),
        )
    }

    /// Classifies an application-level request (deadline in cycles, mean
    /// bandwidth) into a [`ConnectionRequest`] per the paper's scheme:
    /// deadline → distance (over the worst-case hop count of the pair),
    /// then (distance, bandwidth) → SL.
    #[must_use]
    pub fn classify_request(
        &self,
        id: u32,
        src: HostId,
        dst: HostId,
        deadline_cycles: u64,
        mean_bw_mbps: f64,
        packet_bytes: u32,
    ) -> Option<ConnectionRequest> {
        let hops = self.path_ports(src, dst).len();
        let distance = iba_traffic::request::distance_for_deadline(deadline_cycles, hops)?;
        let sl = self.sl_table.classify(distance, mean_bw_mbps)?;
        // The SL's own distance (at least as strict as required) is what
        // gets reserved, so every connection of the SL is homogeneous.
        let sl_distance = self.sl_table.profile(sl)?.distance?;
        Some(ConnectionRequest {
            id,
            src,
            dst,
            sl,
            distance: sl_distance,
            mean_bw_mbps,
            packet_bytes,
        })
    }

    /// Direct handle to a switch-facing port key (test/report helper).
    #[must_use]
    pub fn switch_port_key(&self, s: SwitchId, port: u8) -> PortKey {
        PortKey {
            node: NodeId::Switch(s.0),
            port,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{Distance, ServiceLevel, VirtualLane};
    use iba_topo::{irregular, updown};

    fn small_manager(seed: u64) -> QosManager {
        let topo = irregular::generate(irregular::IrregularConfig::with_switches(4, seed));
        let routing = updown::compute(&topo);
        QosManager::new(topo, routing, SlTable::paper_table1())
    }

    fn req(id: u32, src: u16, dst: u16, sl_id: u8, d: Distance, mbps: f64) -> ConnectionRequest {
        ConnectionRequest {
            id,
            src: HostId(src),
            dst: HostId(dst),
            sl: ServiceLevel::new(sl_id).unwrap(),
            distance: d,
            mean_bw_mbps: mbps,
            packet_bytes: 256,
        }
    }

    #[test]
    fn admit_and_teardown_roundtrip() {
        let mut m = small_manager(1);
        let id = m.request(&req(0, 0, 9, 2, Distance::D8, 4.0)).unwrap();
        assert_eq!(m.live_connections(), 1);
        let conn = m.connection(id).unwrap().clone();
        assert!(conn.hop_count() >= 2, "host hop + at least one switch");
        assert_eq!(
            conn.deadline,
            iba_traffic::request::deadline_with_transmission(Distance::D8, conn.hop_count(), 256)
        );
        assert!(m.teardown(id));
        assert!(!m.teardown(id), "double teardown rejected");
        assert_eq!(m.live_connections(), 0);
        // Every table is empty again.
        for (_, t) in m.port_tables().tables() {
            assert_eq!(t.reserved_weight(), 0);
        }
    }

    #[test]
    fn observed_request_records_cac_metrics() {
        let mut m = small_manager(1);
        let mut rec = iba_obs::ObsRecorder::new();
        let id = m
            .request_observed(&req(0, 0, 9, 2, Distance::D8, 4.0), &mut rec)
            .unwrap();
        assert_eq!(rec.metrics.cac_admit.lane(2).get(), 1);
        assert!(rec.metrics.alloc_probe.get() >= 1, "hops probe allocator");
        // An impossible request (more than one sequence's worth) rejects.
        let err = m
            .request_observed(&req(1, 0, 9, 2, Distance::D8, 1e9), &mut rec)
            .unwrap_err();
        assert_eq!(err, crate::RejectReason::RequestTooLarge);
        let too_large = iba_obs::RejectKind::RequestTooLarge.index();
        assert_eq!(rec.metrics.cac_reject[too_large].get(), 1);
        assert!(m.teardown_observed(id, &mut rec));
        assert_eq!(rec.metrics.cac_release.get(), 1);
    }

    #[test]
    fn path_ports_follow_routing() {
        let m = small_manager(2);
        let ports = m.path_ports(HostId(0), HostId(15));
        assert!(matches!(ports[0].node, NodeId::Host(0)));
        for p in &ports[1..] {
            assert!(matches!(p.node, NodeId::Switch(_)));
        }
        // Last port faces the destination host.
        let PortKey {
            node: NodeId::Switch(s),
            port,
        } = *ports.last().unwrap()
        else {
            panic!()
        };
        assert_eq!(
            m.topology().peer(SwitchId(s), port),
            PortPeer::Host(HostId(15))
        );
    }

    #[test]
    fn capacity_cap_eventually_rejects() {
        let mut m = small_manager(3);
        // Hammer one (src, dst) pair with large requests until rejection.
        let mut admitted = 0;
        let mut rejected = false;
        for i in 0..100 {
            match m.request(&req(i, 0, 9, 9, Distance::D64, 128.0)) {
                Ok(_) => admitted += 1,
                Err(_) => {
                    rejected = true;
                    break;
                }
            }
        }
        assert!(rejected, "cap never hit");
        // 128 Mbps reserves 836/13056 of a link: at most 15 fit.
        assert!(admitted <= 15, "{admitted} admitted");
        assert!(admitted >= 10, "only {admitted} admitted");
        let (acc, rej) = m.admission_counters();
        assert_eq!(acc, admitted as u64);
        assert_eq!(rej, 1);
    }

    #[test]
    fn arb_config_reflects_reservations() {
        let mut m = small_manager(4);
        let id = m.request(&req(0, 0, 9, 0, Distance::D2, 2.0)).unwrap();
        let conn = m.connection(id).unwrap();
        let key = PortKey {
            node: conn.hops[1].node,
            port: conn.hops[1].port,
        };
        let cfg = m.arb_config_for(key);
        // 32 entries for VL0 with the connection's weight spread over
        // them.
        let vl0_entries = cfg
            .high
            .iter()
            .filter(|e| e.weight > 0 && e.vl == VirtualLane::data(0))
            .count();
        assert_eq!(vl0_entries, 32);
        assert_eq!(cfg.low.len(), 3);
        assert_eq!(cfg.limit_of_high_priority, 255);
    }

    #[test]
    fn untouched_ports_get_low_only_config() {
        let m = small_manager(5);
        let cfg = m.arb_config_for(PortKey {
            node: NodeId::Switch(0),
            port: 0,
        });
        assert!(cfg.high.is_empty());
        assert_eq!(cfg.low.len(), 3);
    }

    #[test]
    fn classify_request_end_to_end() {
        let m = small_manager(6);
        // Loose deadline, moderate bandwidth: lands in a d=64 DB SL.
        let r = m
            .classify_request(0, HostId(0), HostId(8), 64 * 16320 * 12, 16.0, 256)
            .unwrap();
        assert_eq!(r.sl.raw(), 7);
        assert_eq!(r.distance, Distance::D64);
        // Impossible deadline: None.
        assert!(m
            .classify_request(0, HostId(0), HostId(8), 100, 16.0, 256)
            .is_none());
    }

    #[test]
    fn reservation_summary_scales_with_load() {
        let mut m = small_manager(7);
        let (h0, s0) = m.reservation_summary();
        assert_eq!((h0, s0), (0.0, 0.0));
        for i in 0..20 {
            let _ = m.request(&req(
                i,
                (i % 16) as u16,
                ((i + 5) % 16) as u16,
                7,
                Distance::D64,
                16.0,
            ));
        }
        let (h1, _s1) = m.reservation_summary();
        assert!(h1 > 0.0);
    }

    #[test]
    fn corrupt_then_repair_restores_every_table_invariant() {
        // Seeded property sweep at the manager level: load the subnet,
        // damage every table, recover, and require `check_all` (per-table
        // consistency + eset spacing) to hold again.
        for seed in 0..25u64 {
            let mut m = small_manager(seed % 5);
            let mut rng = iba_core::SplitMix64::seed_from_u64(seed ^ 0xBEEF);
            for i in 0..12 {
                let d = match rng.next_u64() % 3 {
                    0 => Distance::D8,
                    1 => Distance::D16,
                    _ => Distance::D64,
                };
                let _ = m.request(&req(
                    i,
                    (rng.next_u64() % 16) as u16,
                    (rng.next_u64() % 16) as u16,
                    (rng.next_u64() % 8) as u8,
                    d,
                    4.0,
                ));
            }
            let ops = m.corrupt_tables(seed);
            let mut recovery = crate::recovery::RecoveryManager::new(seed);
            let summary = m.repair_tables(&mut recovery, &mut iba_obs::NullRecorder);
            m.port_tables()
                .check_all()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if ops > 0 {
                assert!(summary.tables > 0, "seed {seed}: no tables visited");
            }
            assert!(
                summary.reinstalled + summary.lost <= summary.evicted,
                "seed {seed}: eviction accounting broken"
            );
        }
    }
}
