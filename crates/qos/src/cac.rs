//! Connection admission control: the per-port table registry and the
//! all-or-nothing multi-hop reservation transaction.
//!
//! "Each request is studied in each node in its path, and it is only
//! accepted if there are available resources."

use crate::connection::HopReservation;
use iba_core::{
    AllocatorKind, Distance, HighPriorityTable, SequenceId, ServiceLevel, TableError, VirtualLane,
    Weight, MAX_TABLE_WEIGHT,
};
use iba_sim::NodeId;
use std::collections::BTreeMap;

/// Identifies one output port in the fabric.
///
/// Ordered `(node, port)` with [`NodeId`]'s canonical order (switches
/// before hosts): the registry is a `BTreeMap`, so everything that
/// iterates tables — audits, recovery, reports — sees this order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortKey {
    /// Owning node.
    pub node: NodeId,
    /// Output port number.
    pub port: u8,
}

impl PortKey {
    /// A stable 64-bit code for this port — independent of process,
    /// hasher and shard count. Keys per-table RNG sub-streams and
    /// assigns ports to admission-service shards.
    #[must_use]
    pub fn stable_code(self) -> u64 {
        let (tag, idx) = match self.node {
            NodeId::Switch(i) => (0u64, u64::from(i)),
            NodeId::Host(i) => (1u64, u64::from(i)),
        };
        (tag << 32) | (idx << 8) | u64::from(self.port)
    }
}

/// Why a request was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// A hop's table had no free sequence for the distance.
    NoFreeSequence(PortKey),
    /// A hop's reservation cap (the 80% QoS share) was hit.
    CapacityExceeded(PortKey),
    /// The request is too large for any single sequence.
    RequestTooLarge,
    /// The request was malformed (zero weight or a stale sequence id).
    InvalidRequest,
    /// Shed by the admission service's bounded-queue load-shedding
    /// ladder before any table was consulted.
    Overloaded,
}

impl RejectReason {
    /// The reason as an `iba-obs` [`iba_obs::RejectKind`] (the port
    /// detail is dropped; only the category is metered).
    #[must_use]
    pub fn kind(&self) -> iba_obs::RejectKind {
        match self {
            RejectReason::NoFreeSequence(_) => iba_obs::RejectKind::NoFreeSequence,
            RejectReason::CapacityExceeded(_) => iba_obs::RejectKind::CapacityExceeded,
            RejectReason::RequestTooLarge => iba_obs::RejectKind::RequestTooLarge,
            RejectReason::InvalidRequest => iba_obs::RejectKind::Invalid,
            RejectReason::Overloaded => iba_obs::RejectKind::Overloaded,
        }
    }
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::NoFreeSequence(k) => {
                write!(f, "no free sequence at {:?} port {}", k.node, k.port)
            }
            RejectReason::CapacityExceeded(k) => {
                write!(f, "reservation cap reached at {:?} port {}", k.node, k.port)
            }
            RejectReason::RequestTooLarge => f.write_str("request exceeds one sequence"),
            RejectReason::InvalidRequest => f.write_str("malformed admission request"),
            RejectReason::Overloaded => f.write_str("admission queue overloaded"),
        }
    }
}

/// A release that did not match a prior admission: the hop's table
/// rejected it (stale sequence id or weight mismatch). Returned instead
/// of panicking so a damaged or repaired table degrades gracefully —
/// the reservation may have been evicted by a repair pass between admit
/// and release.
///
/// `key`/`error` name the **first** failing hop (in release order);
/// `failures` lists every hop that failed, so a multi-hop release that
/// goes wrong at several ports loses no diagnostics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReleaseError {
    /// Port whose table rejected the release (first failure).
    pub key: PortKey,
    /// The underlying table error of the first failure.
    pub error: TableError,
    /// Every failed hop in release order (downstream-first), first
    /// failure included. Never empty.
    pub failures: Vec<(PortKey, TableError)>,
}

impl std::fmt::Display for ReleaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "release failed at {:?} port {}: {}",
            self.key.node, self.key.port, self.error
        )?;
        if self.failures.len() > 1 {
            write!(f, " (+{} more failed hops)", self.failures.len() - 1)?;
        }
        Ok(())
    }
}

impl std::error::Error for ReleaseError {}

/// The registry of high-priority tables, one per output port, created
/// lazily with a shared configuration.
#[derive(Clone, Debug)]
pub struct PortTables {
    tables: BTreeMap<PortKey, HighPriorityTable>,
    allocator: AllocatorKind,
    capacity_limit: Weight,
}

impl PortTables {
    /// Registry whose tables use the paper's allocator and reserve
    /// `qos_fraction` of each link for QoS traffic (paper: 0.8).
    #[must_use]
    pub fn new(qos_fraction: f64) -> Self {
        Self::with_allocator(AllocatorKind::BitReversal, qos_fraction)
    }

    /// Registry with an explicit allocation policy (ablations).
    #[must_use]
    pub fn with_allocator(allocator: AllocatorKind, qos_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&qos_fraction));
        PortTables {
            tables: BTreeMap::new(),
            allocator,
            capacity_limit: (qos_fraction * f64::from(MAX_TABLE_WEIGHT)) as Weight,
        }
    }

    /// The reservation cap applied to every table (weight units).
    #[must_use]
    pub fn capacity_limit(&self) -> Weight {
        self.capacity_limit
    }

    fn table_mut(&mut self, key: PortKey) -> &mut HighPriorityTable {
        let allocator = self.allocator;
        let limit = self.capacity_limit;
        self.tables.entry(key).or_insert_with(|| {
            let mut t = HighPriorityTable::with_allocator(allocator);
            t.set_capacity_limit(limit);
            t
        })
    }

    /// Read access to a port's table (if any reservation ever touched it).
    #[must_use]
    pub fn table(&self, key: PortKey) -> Option<&HighPriorityTable> {
        self.tables.get(&key)
    }

    /// All `(port, table)` pairs touched so far.
    pub fn tables(&self) -> impl Iterator<Item = (PortKey, &HighPriorityTable)> {
        self.tables.iter().map(|(k, t)| (*k, t))
    }

    /// Attempts to reserve `(sl, vl, distance, weight)` at every port in
    /// `path`, in order. On any failure all prior reservations are
    /// rolled back and the failing hop is reported.
    pub fn admit_path(
        &mut self,
        path: &[PortKey],
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
    ) -> Result<Vec<HopReservation>, RejectReason> {
        self.admit_path_observed(path, sl, vl, distance, weight, &mut iba_obs::NullRecorder)
    }

    /// [`PortTables::admit_path`] with instrumentation: each hop's
    /// allocator probes are recorded into `rec` (admission is a
    /// control-plane operation, so dynamic dispatch here costs nothing
    /// measurable).
    pub fn admit_path_observed(
        &mut self,
        path: &[PortKey],
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<Vec<HopReservation>, RejectReason> {
        rec.span_begin("cac.admit");
        let result = self.admit_path_inner(path, sl, vl, distance, weight, rec);
        rec.span_end("cac.admit");
        result
    }

    fn admit_path_inner(
        &mut self,
        path: &[PortKey],
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<Vec<HopReservation>, RejectReason> {
        let mut done: Vec<HopReservation> = Vec::with_capacity(path.len());
        for &key in path {
            match self
                .table_mut(key)
                .admit_observed(sl, vl, distance, weight, rec)
            {
                Ok(adm) => done.push(HopReservation {
                    node: key.node,
                    port: key.port,
                    sequence: adm.sequence,
                }),
                Err(e) => {
                    // Roll back everything reserved so far. These
                    // releases mirror admissions made microseconds ago,
                    // so a failure here means concurrent table damage —
                    // absorb it; the recovery layer re-validates tables.
                    for hop in done.into_iter().rev() {
                        let _ = self.release_hop(hop, weight);
                    }
                    return Err(match e {
                        TableError::NoFreeSequence => RejectReason::NoFreeSequence(key),
                        TableError::CapacityExceeded => RejectReason::CapacityExceeded(key),
                        TableError::RequestTooLarge => RejectReason::RequestTooLarge,
                        _ => RejectReason::InvalidRequest,
                    });
                }
            }
        }
        Ok(done)
    }

    /// Releases one hop's reservation. A mismatched release (stale
    /// sequence, weight underflow — e.g. after a repair pass evicted
    /// the reservation) is reported, not panicked on.
    pub fn release_hop(&mut self, hop: HopReservation, weight: Weight) -> Result<(), ReleaseError> {
        let key = PortKey {
            node: hop.node,
            port: hop.port,
        };
        match self.table_mut(key).release(hop.sequence, weight) {
            Ok(_) => Ok(()),
            Err(error) => Err(ReleaseError {
                key,
                error,
                failures: vec![(key, error)],
            }),
        }
    }

    /// Releases a whole path. Every hop is attempted even when one
    /// fails (a partial release would strand capacity); the returned
    /// error carries **all** failed hops, headlined by the first.
    pub fn release_path(
        &mut self,
        hops: &[HopReservation],
        weight: Weight,
    ) -> Result<(), ReleaseError> {
        let mut failures: Vec<(PortKey, TableError)> = Vec::new();
        for &hop in hops.iter().rev() {
            if let Err(e) = self.release_hop(hop, weight) {
                failures.extend(e.failures);
            }
        }
        match failures.first().copied() {
            None => Ok(()),
            Some((key, error)) => Err(ReleaseError {
                key,
                error,
                failures,
            }),
        }
    }

    /// Port keys of every table touched so far, in canonical order
    /// (switches before hosts, then node index, then port). The
    /// registry is a `BTreeMap`, so this is simply its key order — no
    /// re-sort, and no dependence on hasher behavior.
    pub(crate) fn sorted_keys(&self) -> Vec<PortKey> {
        self.tables.keys().copied().collect()
    }

    /// Mutable access to one touched table (recovery layer).
    pub(crate) fn get_table_mut(&mut self, key: PortKey) -> Option<&mut HighPriorityTable> {
        self.tables.get_mut(&key)
    }

    /// An empty registry with this registry's configuration (allocator
    /// and capacity cap) — the shape a service shard starts from.
    pub(crate) fn empty_like(&self) -> PortTables {
        PortTables {
            tables: BTreeMap::new(),
            allocator: self.allocator,
            capacity_limit: self.capacity_limit,
        }
    }

    /// Moves every table of `other` into this registry. Key sets must
    /// be disjoint (shards own disjoint port sets); a collision keeps
    /// `other`'s table, which the sharded service never produces.
    pub(crate) fn absorb(&mut self, other: PortTables) {
        self.tables.extend(other.tables);
    }

    /// Non-mutating single-hop admission vote: exactly the error the
    /// real admission at `key` would return, including for a port whose
    /// table was never touched (checked against a fresh table).
    pub(crate) fn probe_admit(
        &self,
        key: PortKey,
        sl: ServiceLevel,
        distance: Distance,
        weight: Weight,
    ) -> Result<(), TableError> {
        match self.tables.get(&key) {
            Some(t) => t.check_admit(sl, distance, weight),
            None => {
                let mut t = HighPriorityTable::with_allocator(self.allocator);
                t.set_capacity_limit(self.capacity_limit);
                t.check_admit(sl, distance, weight)
            }
        }
    }

    /// Single-hop admission (the sharded service's commit step): the
    /// same table mutation `admit_path` performs at one hop, recorded
    /// into `rec`.
    pub(crate) fn admit_at(
        &mut self,
        key: PortKey,
        sl: ServiceLevel,
        vl: VirtualLane,
        distance: Distance,
        weight: Weight,
        rec: &mut dyn iba_obs::Recorder,
    ) -> Result<HopReservation, TableError> {
        let adm = self
            .table_mut(key)
            .admit_observed(sl, vl, distance, weight, rec)?;
        Ok(HopReservation {
            node: key.node,
            port: key.port,
            sequence: adm.sequence,
        })
    }

    /// Mean reserved bandwidth (Mbps) over a set of ports, given the
    /// link capacity. Ports never touched count as zero.
    #[must_use]
    pub fn mean_reservation_mbps(&self, keys: &[PortKey], link_mbps: f64) -> f64 {
        if keys.is_empty() {
            return 0.0;
        }
        let total: f64 = keys
            .iter()
            .map(|k| {
                self.tables.get(k).map_or(0.0, |t| {
                    iba_core::bandwidth_for_weight(t.reserved_weight(), link_mbps)
                })
            })
            .sum();
        total / keys.len() as f64
    }

    /// Consistency check over every table (tests).
    pub fn check_all(&self) -> Result<(), String> {
        for (k, t) in &self.tables {
            t.check_consistency()
                .map_err(|e| format!("{:?} port {}: {e}", k.node, k.port))?;
        }
        Ok(())
    }

    /// Returns a sequence's info at a port, for assertions.
    #[must_use]
    pub fn sequence_info(&self, key: PortKey, id: SequenceId) -> Option<iba_core::SequenceInfo> {
        self.tables.get(&key)?.sequence(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u16, p: u8) -> PortKey {
        PortKey {
            node: NodeId::Switch(n),
            port: p,
        }
    }

    fn sl(i: u8) -> ServiceLevel {
        ServiceLevel::new(i).unwrap()
    }

    fn vl(i: u8) -> VirtualLane {
        VirtualLane::data(i)
    }

    #[test]
    fn path_admission_reserves_every_hop() {
        let mut pt = PortTables::new(0.8);
        let path = [key(0, 1), key(1, 2), key(2, 0)];
        let hops = pt
            .admit_path(&path, sl(3), vl(3), Distance::D16, 40)
            .unwrap();
        assert_eq!(hops.len(), 3);
        for k in &path {
            assert_eq!(pt.table(*k).unwrap().reserved_weight(), 40);
        }
        pt.check_all().unwrap();
    }

    #[test]
    fn failure_rolls_back_cleanly() {
        let mut pt = PortTables::new(0.8);
        // Exhaust hop 1's capacity (13056 cap).
        let filler = [key(1, 2)];
        for _ in 0..4 {
            pt.admit_path(&filler, sl(6), vl(6), Distance::D64, 3264)
                .unwrap();
        }
        // 13056 reserved exactly; next admission at hop 1 must fail.
        let path = [key(0, 1), key(1, 2), key(2, 0)];
        let err = pt
            .admit_path(&path, sl(3), vl(3), Distance::D16, 40)
            .unwrap_err();
        assert_eq!(err, RejectReason::CapacityExceeded(key(1, 2)));
        // Hops 0 and 2 were rolled back.
        assert_eq!(pt.table(key(0, 1)).unwrap().reserved_weight(), 0);
        assert!(
            pt.table(key(2, 0)).is_none() || pt.table(key(2, 0)).unwrap().reserved_weight() == 0
        );
        pt.check_all().unwrap();
    }

    #[test]
    fn release_path_returns_capacity() {
        let mut pt = PortTables::new(0.8);
        let path = [key(0, 0), key(1, 1)];
        let hops = pt
            .admit_path(&path, sl(0), vl(0), Distance::D2, 100)
            .unwrap();
        pt.release_path(&hops, 100).unwrap();
        for k in &path {
            assert_eq!(pt.table(*k).unwrap().reserved_weight(), 0);
            assert_eq!(pt.table(*k).unwrap().free_entries(), 64);
        }
    }

    #[test]
    fn mismatched_release_reports_instead_of_panicking() {
        let mut pt = PortTables::new(0.8);
        let path = [key(0, 0), key(1, 1)];
        let hops = pt
            .admit_path(&path, sl(0), vl(0), Distance::D8, 50)
            .unwrap();
        // Releasing more weight than reserved is a typed error.
        let err = pt.release_hop(hops[0], 51).unwrap_err();
        assert_eq!(err.key, key(0, 0));
        assert_eq!(err.error, TableError::WeightUnderflow);
        // A double release of the whole path reports the first failure
        // but still attempts every hop.
        pt.release_path(&hops, 50).unwrap();
        let err = pt.release_path(&hops, 50).unwrap_err();
        assert_eq!(err.error, TableError::UnknownSequence);
        pt.check_all().unwrap();
    }

    #[test]
    fn release_path_aggregates_every_failed_hop() {
        let mut pt = PortTables::new(0.8);
        let path = [key(0, 0), key(1, 1), key(2, 2)];
        let hops = pt
            .admit_path(&path, sl(2), vl(2), Distance::D8, 50)
            .unwrap();
        pt.release_path(&hops, 50).unwrap();
        // A full double release fails at all three hops; the error must
        // carry every failure, headlined by the first in release order
        // (downstream-first, i.e. the last hop of the path).
        let err = pt.release_path(&hops, 50).unwrap_err();
        assert_eq!(err.failures.len(), 3);
        assert_eq!(err.key, key(2, 2));
        assert_eq!((err.key, err.error), err.failures[0]);
        assert!(err
            .failures
            .iter()
            .all(|(_, e)| *e == TableError::UnknownSequence));
        assert_eq!(
            err.failures.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![key(2, 2), key(1, 1), key(0, 0)]
        );
        assert!(err.to_string().contains("+2 more failed hops"));
        // A partial double release (one live hop re-admitted) reports
        // only the hops that actually failed.
        let live = pt
            .admit_path(&[key(1, 1)], sl(2), vl(2), Distance::D8, 50)
            .unwrap();
        let mixed = [hops[0], live[0], hops[2]];
        let err = pt.release_path(&mixed, 50).unwrap_err();
        assert_eq!(err.failures.len(), 2);
        assert_eq!(
            err.failures.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![key(2, 2), key(0, 0)]
        );
        pt.check_all().unwrap();
    }

    #[test]
    fn stable_code_is_injective_across_node_kinds() {
        let a = PortKey {
            node: NodeId::Switch(3),
            port: 1,
        };
        let b = PortKey {
            node: NodeId::Host(3),
            port: 1,
        };
        assert_ne!(a.stable_code(), b.stable_code());
        assert_eq!(a.stable_code(), (3 << 8) | 1);
        assert_eq!(b.stable_code(), (1 << 32) | (3 << 8) | 1);
    }

    #[test]
    fn reservation_metric() {
        let mut pt = PortTables::new(1.0);
        let path = [key(0, 0)];
        // Half the table weight => half the link.
        pt.admit_path(&path, sl(9), vl(9), Distance::D64, 8160)
            .unwrap();
        let mbps = pt.mean_reservation_mbps(&[key(0, 0), key(5, 5)], 2500.0);
        // One port at 1250 Mbps, one untouched: mean 625.
        assert!((mbps - 625.0).abs() < 1.0, "{mbps}");
    }

    #[test]
    fn shared_sequences_across_connections() {
        let mut pt = PortTables::new(0.8);
        let path = [key(0, 0)];
        let a = pt
            .admit_path(&path, sl(4), vl(4), Distance::D32, 30)
            .unwrap();
        let b = pt
            .admit_path(&path, sl(4), vl(4), Distance::D32, 30)
            .unwrap();
        assert_eq!(a[0].sequence, b[0].sequence, "same SL must share");
        let info = pt.sequence_info(key(0, 0), a[0].sequence).unwrap();
        assert_eq!(info.connections, 2);
        assert_eq!(info.total_weight, 60);
    }
}
