//! Dynamic scenarios: connections arriving and departing while the
//! fabric runs ("both algorithms together permit the meeting and
//! release of sequences in an optimal and dynamical way").
//!
//! The [`ChurnRunner`] interleaves simulation with admission events:
//! at each arrival it asks the manager for a reservation, downloads the
//! updated arbitration tables into the fabric (the subnet-management
//! step) and starts the flow; at each departure it stops the flow and
//! releases the reservation, triggering defragmentation inside the
//! affected tables.

use crate::connection::ConnectionId;
use crate::frame::QosFrame;
use crate::measure::QosObserver;
use iba_sim::{Cycles, Fabric};
use iba_traffic::{flow_for_connection, ConnectionRequest};

/// One scheduled churn event.
#[derive(Clone, Debug)]
pub enum ChurnEvent {
    /// A connection request arrives at `at`.
    Arrive {
        /// Simulation time of the arrival.
        at: Cycles,
        /// The request.
        request: ConnectionRequest,
    },
    /// The oldest live churn-admitted connection departs at `at`.
    DepartOldest {
        /// Simulation time of the departure.
        at: Cycles,
    },
}

impl ChurnEvent {
    fn at(&self) -> Cycles {
        match self {
            ChurnEvent::Arrive { at, .. } | ChurnEvent::DepartOldest { at } => *at,
        }
    }
}

/// Counters reported by a churn run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChurnStats {
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Departures executed.
    pub departed: u64,
    /// Departure events with nothing to tear down.
    pub empty_departures: u64,
}

/// Drives a fabric through a churn scenario.
pub struct ChurnRunner {
    events: Vec<ChurnEvent>,
    live: Vec<(ConnectionId, u32)>,
    stats: ChurnStats,
}

impl ChurnRunner {
    /// Builds a runner; events are sorted by time.
    #[must_use]
    pub fn new(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(ChurnEvent::at);
        ChurnRunner {
            events,
            live: Vec::new(),
            stats: ChurnStats::default(),
        }
    }

    /// Runs the scenario: simulates up to each event time, applies the
    /// event, and finally runs until `horizon`. The observer keeps
    /// accumulating; new connections are registered as they are
    /// admitted.
    pub fn run(
        mut self,
        frame: &mut QosFrame,
        fabric: &mut Fabric,
        observer: &mut QosObserver,
        horizon: Cycles,
    ) -> ChurnStats {
        let events = std::mem::take(&mut self.events);
        for event in events {
            let t = event.at().min(horizon);
            fabric.run_until(t, observer);
            match event {
                ChurnEvent::Arrive { request, .. } => {
                    match frame.manager.request(&request) {
                        Ok(id) => {
                            self.stats.admitted += 1;
                            let conn = frame.manager.connection(id);
                            assert!(conn.is_some(), "admitted connection must exist");
                            let Some(conn) = conn else { continue };
                            observer.register(
                                request.id,
                                request.sl.raw(),
                                conn.deadline,
                                conn.interarrival,
                            );
                            // Subnet-management download, then start the
                            // source.
                            frame.manager.apply_tables(fabric);
                            let phase = fabric.now()
                                + (u64::from(request.id) * 97) % conn.interarrival.max(1);
                            fabric.add_flow(flow_for_connection(&request, 0).with_start(phase));
                            self.live.push((id, request.id));
                        }
                        Err(_) => self.stats.rejected += 1,
                    }
                }
                ChurnEvent::DepartOldest { at } => {
                    if self.live.is_empty() {
                        self.stats.empty_departures += 1;
                    } else {
                        let (conn_id, flow_id) = self.live.remove(0);
                        fabric.stop_flow(flow_id, at);
                        assert!(frame.manager.teardown(conn_id));
                        frame.manager.apply_tables(fabric);
                        self.stats.departed += 1;
                    }
                }
            }
        }
        fabric.run_until(horizon, observer);
        self.stats
    }
}

/// Small helper so churn can set an absolute start time on a flow spec.
trait WithStart {
    fn with_start(self, start: Cycles) -> Self;
}

impl WithStart for iba_sim::FlowSpec {
    fn with_start(mut self, start: Cycles) -> Self {
        self.start = start;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iba_core::{Distance, ServiceLevel, SlTable};
    use iba_sim::SimConfig;
    use iba_topo::irregular::{generate, IrregularConfig};
    use iba_topo::{updown, HostId};

    fn frame(seed: u64) -> QosFrame {
        let topo = generate(IrregularConfig::with_switches(4, seed));
        let routing = updown::compute(&topo);
        QosFrame::new(
            topo,
            routing,
            SlTable::paper_table1(),
            SimConfig::paper_default(256),
        )
    }

    fn req(id: u32, src: u16, dst: u16) -> ConnectionRequest {
        ConnectionRequest {
            id,
            src: HostId(src),
            dst: HostId(dst),
            sl: ServiceLevel::new(4).unwrap(),
            distance: Distance::D32,
            mean_bw_mbps: 8.0,
            packet_bytes: 256,
        }
    }

    #[test]
    fn arrivals_and_departures_balance() {
        let mut f = frame(1);
        let (mut fabric, mut obs) = f.build_fabric(0, None);
        let events = vec![
            ChurnEvent::Arrive {
                at: 0,
                request: req(0, 0, 9),
            },
            ChurnEvent::Arrive {
                at: 100_000,
                request: req(1, 1, 8),
            },
            ChurnEvent::DepartOldest { at: 500_000 },
            ChurnEvent::Arrive {
                at: 600_000,
                request: req(2, 2, 7),
            },
            ChurnEvent::DepartOldest { at: 900_000 },
            ChurnEvent::DepartOldest { at: 950_000 },
        ];
        let stats = ChurnRunner::new(events).run(&mut f, &mut fabric, &mut obs, 2_000_000);
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.departed, 3);
        assert_eq!(stats.rejected, 0);
        assert_eq!(f.manager.live_connections(), 0);
        f.manager.port_tables().check_all().unwrap();
        assert!(obs.qos_packets > 0);
    }

    #[test]
    fn departure_on_empty_is_counted_not_fatal() {
        let mut f = frame(2);
        let (mut fabric, mut obs) = f.build_fabric(0, None);
        let events = vec![ChurnEvent::DepartOldest { at: 10 }];
        let stats = ChurnRunner::new(events).run(&mut f, &mut fabric, &mut obs, 1000);
        assert_eq!(stats.empty_departures, 1);
    }

    #[test]
    fn events_are_time_sorted() {
        let mut f = frame(3);
        let (mut fabric, mut obs) = f.build_fabric(0, None);
        // Deliberately unsorted input.
        let events = vec![
            ChurnEvent::Arrive {
                at: 500_000,
                request: req(1, 1, 8),
            },
            ChurnEvent::Arrive {
                at: 0,
                request: req(0, 0, 9),
            },
        ];
        let stats = ChurnRunner::new(events).run(&mut f, &mut fabric, &mut obs, 1_000_000);
        assert_eq!(stats.admitted, 2);
        assert_eq!(f.manager.live_connections(), 2);
    }
}
