//! Cross-validation of the multiset quotient against concrete search.
//!
//! The quotient of [`crate::quotient`] is only as trustworthy as its
//! soundness argument, so this module checks the argument itself on
//! scaled-down tables ([`iba_core::model::MiniTable`], sizes 8/16/32)
//! where both sides are tractable:
//!
//! 1. the set of distance multisets reachable by **concrete**
//!    exploration (raw `(d, offset)` states, defrag on free) equals the
//!    state set of the **quotient** exploration, and
//! 2. neither side ever reaches a non-canonical state.
//!
//! At sizes 8 and 16 both explorations are exhaustive, so (1) is a set
//! equality; at size 32 the concrete side is bounded and (1) weakens to
//! a subset check.

use iba_core::model::{MiniTable, ModelState};
use std::collections::{BTreeSet, VecDeque};

/// Outcome of one cross-validation run.
#[derive(Clone, Debug)]
pub struct CrossvalReport {
    /// Table size validated.
    pub size: u32,
    /// Concrete states visited.
    pub concrete_states: usize,
    /// Distinct multisets seen concretely.
    pub concrete_multisets: usize,
    /// Quotient states visited (always exhaustive).
    pub quotient_states: usize,
    /// Whether the concrete side hit its state bound.
    pub concrete_truncated: bool,
    /// Disagreements between the two explorations (empty = validated).
    pub mismatches: Vec<String>,
}

/// The distance multiset of a concrete model state, as counts indexed
/// by `log2(d) - 1`.
fn multiset_of(state: &ModelState, n_dists: usize) -> Vec<u8> {
    let mut counts = vec![0u8; n_dists];
    for &(d, _) in state {
        // lint: allow(no-raw-occupancy-arith) -- log2 of a distance value, not mask decoding
        counts[u32::from(d).trailing_zeros() as usize - 1] += 1;
    }
    counts
}

/// Concrete BFS over raw model states (alloc at any distance, free any
/// sequence then defrag), collecting the projected multiset set.
fn concrete_explore(
    table: MiniTable,
    size: u32,
    max_states: usize,
) -> (usize, BTreeSet<Vec<u8>>, bool, Vec<String>) {
    // lint: allow(no-raw-occupancy-arith) -- log2 of the table size, not mask decoding
    let n_dists = size.trailing_zeros() as usize;
    let mut violations = Vec::new();
    let mut seen: BTreeSet<ModelState> = BTreeSet::new();
    let mut multisets: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut queue: VecDeque<ModelState> = VecDeque::new();
    let mut states = 0usize;
    let mut truncated = false;

    let empty: ModelState = Vec::new();
    seen.insert(empty.clone());
    queue.push_back(empty);

    while let Some(state) = queue.pop_front() {
        if states >= max_states {
            truncated = true;
            break;
        }
        states += 1;
        multisets.insert(multiset_of(&state, n_dists));
        let occ = table.occupancy(&state);
        if !table.is_canonical(occ) {
            violations.push(format!(
                "concrete size {size}: non-canonical state {state:?}"
            ));
        }
        for d in table.distances() {
            if let Some(s) = table.alloc(occ, d) {
                let mut next = state.clone();
                next.push(s);
                next.sort_unstable();
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        for i in 0..state.len() {
            let mut next = state.clone();
            next.remove(i);
            let next = table.defrag(&next);
            if seen.insert(next.clone()) {
                queue.push_back(next);
            }
        }
    }
    (states, multisets, truncated, violations)
}

/// Quotient BFS over multisets of the scaled table: the representative
/// is rebuilt largest-first, canonicity is checked at every node, and
/// admission must succeed exactly when the free entries permit it.
fn quotient_explore(table: MiniTable, size: u32) -> (BTreeSet<Vec<u8>>, Vec<String>) {
    let dists: Vec<u32> = table.distances().collect();
    let costs: Vec<u32> = dists.iter().map(|d| size / d).collect();
    let mut violations = Vec::new();
    let mut seen: BTreeSet<Vec<u8>> = BTreeSet::new();
    let mut queue: VecDeque<Vec<u8>> = VecDeque::new();
    let start = vec![0u8; dists.len()];
    seen.insert(start.clone());
    queue.push_back(start);

    while let Some(counts) = queue.pop_front() {
        // Representative: admit largest-first (smallest distance =
        // most entries first), mirroring production defrag order.
        let mut occ = 0u64;
        let mut ok = true;
        for (i, &d) in dists.iter().enumerate() {
            for _ in 0..counts[i] {
                match table.alloc(occ, d) {
                    Some(s) => occ = table.occupancy_with(occ, s),
                    None => {
                        violations.push(format!(
                            "quotient size {size}: representative of {counts:?} failed at d={d}"
                        ));
                        ok = false;
                    }
                }
            }
        }
        if ok && !table.is_canonical(occ) {
            violations.push(format!("quotient size {size}: non-canonical {counts:?}"));
        }
        let used: u32 = counts
            .iter()
            .zip(&costs)
            .map(|(&c, &cost)| u32::from(c) * cost)
            .sum();
        for (i, &d) in dists.iter().enumerate() {
            let fits = used + costs[i] <= size;
            let placed = table.alloc(occ, d).is_some();
            if fits != placed {
                violations.push(format!(
                    "quotient size {size}: {counts:?} + d={d}: fits={fits} but placed={placed}"
                ));
            }
            if fits {
                let mut next = counts.clone();
                next[i] += 1;
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        for i in 0..dists.len() {
            if counts[i] > 0 {
                let mut next = counts.clone();
                next[i] -= 1;
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    (seen, violations)
}

/// Runs both explorations at `size` and compares them. `max_concrete`
/// bounds the concrete side; pass `usize::MAX` for exhaustiveness.
#[must_use]
pub fn validate(size: u32, max_concrete: usize) -> CrossvalReport {
    let table = MiniTable::new(size);
    let (concrete_states, concrete_multisets, truncated, mut mismatches) =
        concrete_explore(table, size, max_concrete);
    let (quotient_set, qviol) = quotient_explore(table, size);
    mismatches.extend(qviol);

    // Both sides are BTreeSets, so the mismatch report below comes out
    // in lexicographic multiset order — stable across runs and hashers.
    for m in &concrete_multisets {
        if !quotient_set.contains(m) {
            mismatches.push(format!(
                "size {size}: multiset {m:?} reachable concretely but absent from quotient"
            ));
        }
    }
    if !truncated {
        for m in &quotient_set {
            if !concrete_multisets.contains(m) {
                mismatches.push(format!(
                    "size {size}: quotient state {m:?} not reachable concretely"
                ));
            }
        }
    }

    CrossvalReport {
        size,
        concrete_states,
        concrete_multisets: concrete_multisets.len(),
        quotient_states: quotient_set.len(),
        concrete_truncated: truncated,
        mismatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size8_quotient_agrees_with_concrete() {
        let r = validate(8, usize::MAX);
        assert!(!r.concrete_truncated);
        assert!(r.mismatches.is_empty(), "{:?}", r.mismatches.first());
        assert_eq!(r.concrete_multisets, r.quotient_states);
    }

    #[test]
    fn size16_quotient_agrees_with_concrete() {
        let r = validate(16, usize::MAX);
        assert!(!r.concrete_truncated);
        assert!(r.mismatches.is_empty(), "{:?}", r.mismatches.first());
        assert_eq!(r.concrete_multisets, r.quotient_states);
    }

    #[test]
    fn size32_bounded_concrete_is_a_quotient_subset() {
        let r = validate(32, 30_000);
        assert!(r.mismatches.is_empty(), "{:?}", r.mismatches.first());
        assert!(r.concrete_multisets <= r.quotient_states);
    }
}
