//! `iba-verify` — drives the model checker from the command line.
//!
//! ```text
//! iba-verify [--exhaustive] [--max-states N]
//! ```
//!
//! Default mode bounds every exploration so the whole run finishes in
//! well under two minutes even unoptimised (the CI configuration);
//! `--exhaustive` removes the bounds on the quotient exploration and
//! the rotation sweep, covering all 27 337 reachable multiset states
//! and every release rotation. Exit status is non-zero when the
//! bit-reversal policy shows any violation **or** when the baseline
//! counterexample search fails to indict first-fit and reverse-fit.

#![forbid(unsafe_code)]

use iba_core::invariants::check_table;
use iba_core::AllocatorKind;
use iba_verify::{concrete, crossval, quotient, sweep};

struct Options {
    exhaustive: bool,
    max_states: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        exhaustive: false,
        max_states: 4_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exhaustive" => opts.exhaustive = true,
            "--max-states" => {
                let v = args.next().ok_or("--max-states needs a value")?;
                opts.max_states = v
                    .parse()
                    .map_err(|_| format!("invalid --max-states value: {v}"))?;
            }
            "--help" | "-h" => {
                println!("usage: iba-verify [--exhaustive] [--max-states N]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: iba-verify [--exhaustive] [--max-states N]");
            std::process::exit(2);
        }
    };
    let mut failed = false;

    // 1. Quotient exploration of the production table under bit-reversal.
    let bound = if opts.exhaustive {
        usize::MAX
    } else {
        opts.max_states
    };
    println!("[1/4] quotient exploration (bit-reversal + defrag)");
    let q = quotient::explore(bound, opts.exhaustive);
    println!(
        "      states: {}  transitions: {}  violations: {}{}",
        q.states,
        q.transitions,
        q.violations.len(),
        if q.truncated {
            "  (truncated)"
        } else {
            "  (exhaustive)"
        }
    );
    if opts.exhaustive {
        let expected = quotient::count_fitting_multisets(iba_core::TABLE_ENTRIES);
        if q.truncated || q.states != expected {
            println!(
                "      FAIL: expected {expected} states exhaustively, saw {}",
                q.states
            );
            failed = true;
        } else {
            println!("      covered all {expected} reachable multiset classes");
        }
    }
    for v in q.violations.iter().take(5) {
        println!("      VIOLATION at {:?}: {}", v.state, v.detail);
    }
    failed |= !q.violations.is_empty();

    // 2. Counterexample search for the baseline allocators.
    println!("[2/4] counterexample search for baseline policies");
    for kind in [AllocatorKind::FirstFit, AllocatorKind::ReverseFit] {
        let r = concrete::search(kind, 5_000);
        match r.counterexample {
            Some(ce) => match concrete::replay(kind, &ce.trace) {
                Ok(t) if check_table(&t).is_err() => {
                    println!("      {ce}");
                    println!("        (replayed: violation reproduces)");
                }
                Ok(_) => {
                    println!("      FAIL: {} counterexample does not replay", kind.name());
                    failed = true;
                }
                Err(e) => {
                    println!("      FAIL: {} replay errored: {e}", kind.name());
                    failed = true;
                }
            },
            None => {
                println!(
                    "      FAIL: no counterexample for {} in {} states",
                    kind.name(),
                    r.states
                );
                failed = true;
            }
        }
    }
    let bitrev = concrete::search(AllocatorKind::BitReversal, opts.max_states.min(3_000));
    if let Some(ce) = &bitrev.counterexample {
        println!("      FAIL: bit-reversal violated canonicity: {ce}");
        failed = true;
    } else {
        println!(
            "      bit-reversal: {} concrete states, no violation",
            bitrev.states
        );
    }

    // 3. Cross-validation of the quotient reduction on scaled tables.
    println!("[3/4] quotient-vs-concrete cross-validation (sizes 8/16/32)");
    for (size, max) in [(8u32, usize::MAX), (16, usize::MAX), (32, 30_000)] {
        let r = crossval::validate(size, max);
        println!(
            "      size {:>2}: {} concrete states -> {} multisets, {} quotient states, {} mismatches{}",
            r.size,
            r.concrete_states,
            r.concrete_multisets,
            r.quotient_states,
            r.mismatches.len(),
            if r.concrete_truncated { "  (concrete bounded)" } else { "" }
        );
        for m in r.mismatches.iter().take(3) {
            println!("      MISMATCH: {m}");
        }
        failed |= !r.mismatches.is_empty();
    }

    // 4. Admit-all / release-every-rotation sweep.
    println!("[4/4] rotation release sweep");
    let s = sweep::rotation_sweep(
        opts.exhaustive,
        if opts.exhaustive { usize::MAX } else { 1_000 },
    );
    println!(
        "      multisets: {}  rotations: {}  releases: {}  violations: {}{}",
        s.multisets,
        s.rotations,
        s.releases,
        s.violations.len(),
        if s.truncated {
            "  (truncated)"
        } else {
            "  (exhaustive)"
        }
    );
    for v in s.violations.iter().take(5) {
        println!("      VIOLATION: {v}");
    }
    failed |= !s.violations.is_empty();

    if failed {
        println!("RESULT: FAIL");
        std::process::exit(1);
    }
    println!("RESULT: PASS");
}
