//! Quotient-space model checking of the production table under the
//! bit-reversal allocator.
//!
//! **Reduction.** Two table states are equivalent when their live
//! sequences have the same *distance multiset*. Under bit-reversal +
//! auto-defrag the equivalence is a bisimulation for the properties we
//! check: defragmentation re-places the live sequences largest-first
//! with a deterministic policy, so the occupancy after any release is a
//! function of the multiset alone, and admission feasibility depends
//! only on the occupancy. The quotient space is exactly the set of
//! multisets fitting in 64 slots — [`count_fitting_multisets`] = 27 337
//! — instead of the astronomically larger raw state space.
//!
//! **What is checked at every node.** The representative table is
//! rebuilt through the production `admit` path and
//! [`iba_core::invariants::check_table`] (internal consistency + the
//! canonical-layout property `optimal_placement_holds`) is asserted; on
//! every admission transition, success must coincide exactly with "the
//! free-entry count permits it" — the paper's headline guarantee.

use crate::distance_index;
use iba_core::invariants::check_table;
use iba_core::{
    Distance, HighPriorityTable, SequenceId, ServiceLevel, VirtualLane, Weight, TABLE_ENTRIES,
};
use std::collections::{BTreeSet, VecDeque};

/// Number of live sequences per distance, indexed as [`Distance::ALL`].
pub type Counts = [u8; 6];

/// Entries consumed by a multiset.
#[must_use]
pub fn used_entries(counts: &Counts) -> usize {
    Distance::ALL
        .iter()
        .enumerate()
        .map(|(i, d)| counts[i] as usize * d.entries())
        .sum()
}

/// One invariant violation, with the state it occurred in.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The multiset state.
    pub state: Counts,
    /// What went wrong.
    pub detail: String,
}

/// Outcome of a quotient exploration.
#[derive(Clone, Debug, Default)]
pub struct QuotientReport {
    /// Distinct multiset states visited.
    pub states: usize,
    /// Transitions examined.
    pub transitions: usize,
    /// Violations found (empty = the theorem holds on the explored space).
    pub violations: Vec<Violation>,
    /// Whether the state bound cut the exploration short.
    pub truncated: bool,
}

fn sl_of(k: usize) -> ServiceLevel {
    ServiceLevel::new((k % 10) as u8).expect("k % 10 is a valid SL")
}

fn vl_of(k: usize) -> VirtualLane {
    VirtualLane::data((k % 10) as u8)
}

fn full_weight(d: Distance) -> Weight {
    (d.entries() * 255) as Weight
}

/// Builds the canonical representative of a multiset by admitting every
/// sequence largest-first through the production table. Each sequence
/// gets its full weight (`entries × 255`) so no later request can join
/// it — one admit, one fresh sequence.
pub fn representative(counts: &Counts) -> Result<(HighPriorityTable, Vec<SequenceId>), String> {
    let mut table = HighPriorityTable::new();
    let mut ids = Vec::new();
    for (i, d) in Distance::ALL.iter().enumerate() {
        for _ in 0..counts[i] {
            let k = ids.len();
            match table.admit(sl_of(k), vl_of(k), *d, full_weight(*d)) {
                Ok(adm) if adm.new_sequence => ids.push(adm.sequence),
                Ok(_) => return Err(format!("full-weight admit of {d} joined a sequence")),
                Err(e) => return Err(format!("representative admit of {d} failed: {e}")),
            }
        }
    }
    Ok((table, ids))
}

/// Explores the quotient space breadth-first from the empty table.
///
/// With `check_all_releases`, *every* live sequence is released on its
/// own cloned table (slower, exercises all representatives); otherwise
/// one sequence per distance is released (sufficient to cover every
/// successor state). Stops after `max_states` states.
#[must_use]
pub fn explore(max_states: usize, check_all_releases: bool) -> QuotientReport {
    let mut report = QuotientReport::default();
    let mut seen: BTreeSet<Counts> = BTreeSet::new();
    let mut queue: VecDeque<Counts> = VecDeque::new();
    let start: Counts = [0; 6];
    seen.insert(start);
    queue.push_back(start);

    while let Some(state) = queue.pop_front() {
        if report.states >= max_states {
            report.truncated = true;
            break;
        }
        report.states += 1;

        let (table, ids) = match representative(&state) {
            Ok(pair) => pair,
            Err(detail) => {
                report.violations.push(Violation { state, detail });
                continue;
            }
        };
        if let Err(detail) = check_table(&table) {
            report.violations.push(Violation { state, detail });
        }

        // Admission transitions: one per distance. The paper's theorem
        // demands success *iff* the free entries suffice.
        for (i, d) in Distance::ALL.iter().enumerate() {
            report.transitions += 1;
            let fits = used_entries(&state) + d.entries() <= TABLE_ENTRIES;
            let mut next_table = table.clone();
            match next_table.admit(sl_of(ids.len()), vl_of(ids.len()), *d, full_weight(*d)) {
                Ok(adm) => {
                    if !fits {
                        report.violations.push(Violation {
                            state,
                            detail: format!(
                                "admitted {d} with only {} entries free",
                                table.free_entries()
                            ),
                        });
                        continue;
                    }
                    if !adm.new_sequence {
                        report.violations.push(Violation {
                            state,
                            detail: format!("full-weight admit of {d} joined a sequence"),
                        });
                        continue;
                    }
                    if let Err(detail) = check_table(&next_table) {
                        report.violations.push(Violation { state, detail });
                    }
                    let mut next = state;
                    next[i] += 1;
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
                Err(e) if fits => report.violations.push(Violation {
                    state,
                    detail: format!(
                        "optimal placement failed: {d} rejected ({e}) with {} entries free",
                        table.free_entries()
                    ),
                }),
                Err(_) => {}
            }
        }

        // Release transitions. All successors are covered by releasing
        // one sequence per distance; `check_all_releases` additionally
        // validates that every equivalent choice stays canonical.
        let mut done_distance = [false; 6];
        for &id in &ids {
            let Some(info) = table.sequence(id) else {
                continue;
            };
            let i = distance_index(info.eset.distance());
            if !check_all_releases && done_distance[i] {
                continue;
            }
            done_distance[i] = true;
            report.transitions += 1;
            let mut next_table = table.clone();
            match next_table.release(id, info.total_weight) {
                Ok(_) => {
                    if let Err(detail) = check_table(&next_table) {
                        report.violations.push(Violation { state, detail });
                    }
                    let mut next = state;
                    next[i] -= 1;
                    if seen.insert(next) {
                        queue.push_back(next);
                    }
                }
                Err(e) => report.violations.push(Violation {
                    state,
                    detail: format!("release of live sequence failed: {e}"),
                }),
            }
        }
    }
    report
}

/// The number of distance multisets fitting in `capacity` entries
/// (counting the empty multiset) — the exact size of the quotient space.
#[must_use]
pub fn count_fitting_multisets(capacity: usize) -> usize {
    // DP over distances: ways to spend `c` entries on sequences of the
    // remaining distances, where a distance-d sequence costs 64/d.
    fn go(dists: &[Distance], capacity: usize) -> usize {
        let Some((d, rest)) = dists.split_first() else {
            return 1;
        };
        let cost = d.entries();
        let mut total = 0;
        let mut spent = 0;
        while spent <= capacity {
            total += go(rest, capacity - spent);
            spent += cost;
        }
        total
    }
    go(&Distance::ALL, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quotient_space_size_is_known() {
        assert_eq!(count_fitting_multisets(TABLE_ENTRIES), 27_337);
        assert_eq!(count_fitting_multisets(0), 1);
    }

    #[test]
    fn representative_matches_multiset() {
        let counts: Counts = [1, 0, 2, 0, 0, 3];
        let (table, ids) = representative(&counts).unwrap();
        assert_eq!(ids.len(), 6);
        assert_eq!(table.free_entries(), TABLE_ENTRIES - used_entries(&counts));
        check_table(&table).unwrap();
    }

    #[test]
    fn bounded_exploration_finds_no_violations() {
        let report = explore(400, false);
        assert!(report.truncated, "400 states should not exhaust the space");
        assert!(
            report.violations.is_empty(),
            "{:?}",
            report.violations.first()
        );
        assert_eq!(report.states, 400);
    }

    #[test]
    fn small_capacity_exploration_is_exhaustive() {
        // The quotient of the *production* table is 27k states; the
        // exhaustive run lives in the binary. Here: verify the counting
        // DP against brute force for small capacities.
        for cap in [2usize, 4, 8] {
            let dp = count_fitting_multisets(cap);
            // Brute force over counts bounded by cap/entries.
            let mut brute = 0usize;
            let maxc: Vec<usize> = Distance::ALL.iter().map(|d| cap / d.entries()).collect();
            let mut c = [0usize; 6];
            'outer: loop {
                let used: usize = Distance::ALL
                    .iter()
                    .enumerate()
                    .map(|(i, d)| c[i] * d.entries())
                    .sum();
                if used <= cap {
                    brute += 1;
                }
                for i in 0..6 {
                    if c[i] < maxc[i] {
                        c[i] += 1;
                        continue 'outer;
                    }
                    c[i] = 0;
                }
                break;
            }
            assert_eq!(dp, brute, "capacity {cap}");
        }
    }
}
