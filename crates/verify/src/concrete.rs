//! Concrete (non-quotient) exploration with operation traces.
//!
//! The multiset reduction of [`crate::quotient`] is only a bisimulation
//! for bit-reversal + defrag; for the first-fit and reverse-fit
//! baselines the occupancy is path-dependent, so this module explores
//! raw table states breadth-first and carries the `admit`/`release`
//! script to every node. When a reachable state violates the canonical
//! property, the shortest such script pops out as a **mechanical
//! counterexample** — replayable with [`replay`] — showing exactly how
//! the baseline strands free entries the paper's policy would have kept
//! usable.

use iba_core::invariants::check_table;
use iba_core::{
    AllocatorKind, Distance, HighPriorityTable, SequenceId, ServiceLevel, VirtualLane, Weight,
};
use std::collections::{BTreeSet, VecDeque};

/// One step of a counterexample script.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Op {
    /// Admit a fresh full-weight sequence of the given distance.
    Admit(Distance),
    /// Release the `n`-th oldest live sequence.
    Release(usize),
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Admit(d) => write!(f, "admit({d})"),
            Op::Release(n) => write!(f, "release(#{n})"),
        }
    }
}

/// A mechanically found canonicity violation.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The allocator the trace indicts.
    pub allocator: AllocatorKind,
    /// Shortest script from the empty table to the violation.
    pub trace: Vec<Op>,
    /// Occupancy at the violating state.
    pub occupancy: u64,
    /// Free entries at the violating state.
    pub free_entries: usize,
    /// A distance whose entry count fits the free entries yet has no
    /// free set (the canonical property's witness).
    pub unservable: Distance,
    /// The checker's description.
    pub detail: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let script: Vec<String> = self.trace.iter().map(ToString::to_string).collect();
        write!(
            f,
            "{}: [{}] -> occupancy {:#018x}, {} entries free but d={} unservable",
            self.allocator.name(),
            script.join(", "),
            self.occupancy,
            self.free_entries,
            self.unservable.slots(),
        )
    }
}

/// Outcome of a concrete search.
#[derive(Clone, Debug, Default)]
pub struct SearchReport {
    /// Distinct concrete states visited.
    pub states: usize,
    /// Whether the state bound stopped the search.
    pub truncated: bool,
    /// The shortest violation found, if any.
    pub counterexample: Option<Counterexample>,
}

fn sl_of(k: usize) -> ServiceLevel {
    ServiceLevel::new((k % 10) as u8).expect("k % 10 is a valid SL")
}

fn vl_of(k: usize) -> VirtualLane {
    VirtualLane::data((k % 10) as u8)
}

fn full_weight(d: Distance) -> Weight {
    (d.entries() * 255) as Weight
}

/// Structural key of a table state: the sorted live `(log2 d, offset)`
/// pairs. Two tables with the same key behave identically under every
/// future script (weights are always full, so joining never occurs and
/// service levels are irrelevant).
fn state_key(table: &HighPriorityTable) -> Vec<(u8, u8)> {
    let mut key: Vec<(u8, u8)> = table
        .sequences()
        .map(|(_, info)| (info.eset.distance().log2() as u8, info.eset.offset() as u8))
        .collect();
    key.sort_unstable();
    key
}

/// The most restrictive distance that *should* be servable by the free
/// entry count but is not — `None` when the state is canonical.
fn unservable_distance(table: &HighPriorityTable) -> Option<Distance> {
    let free = table.free_entries();
    let occ = table.occupancy();
    Distance::ALL
        .into_iter()
        .find(|d| d.entries() <= free && table.allocator().select(occ, *d).is_none())
}

/// Breadth-first search over concrete states of a table driven by
/// `allocator`, up to `max_states` distinct states. Returns the
/// shortest canonicity violation, if one is reachable in the bound.
///
/// Auto-defrag stays at the production default (on): even with the
/// canonical re-packing running after every emptying release, the
/// baseline allocators *still* reach non-canonical states through
/// admissions alone — which is the paper's argument for bit-reversal.
#[must_use]
pub fn search(allocator: AllocatorKind, max_states: usize) -> SearchReport {
    /// BFS node: the table, its live sequences, and the script that built it.
    type Node = (HighPriorityTable, Vec<(SequenceId, Weight)>, Vec<Op>);
    let mut report = SearchReport::default();
    let mut seen: BTreeSet<Vec<(u8, u8)>> = BTreeSet::new();
    let mut queue: VecDeque<Node> = VecDeque::new();

    let empty = HighPriorityTable::with_allocator(allocator);
    seen.insert(state_key(&empty));
    queue.push_back((empty, Vec::new(), Vec::new()));

    while let Some((table, live, trace)) = queue.pop_front() {
        if report.states >= max_states {
            report.truncated = true;
            break;
        }
        report.states += 1;

        if let Err(detail) = check_table(&table) {
            let unservable = unservable_distance(&table).unwrap_or(Distance::D2);
            report.counterexample = Some(Counterexample {
                allocator,
                trace,
                occupancy: table.occupancy(),
                free_entries: table.free_entries(),
                unservable,
                detail,
            });
            break; // BFS: the first violation found is a shortest one.
        }

        // Admissions.
        for d in Distance::ALL {
            let mut next = table.clone();
            let k = live.len();
            if let Ok(adm) = next.admit(sl_of(k), vl_of(k), d, full_weight(d)) {
                if seen.insert(state_key(&next)) {
                    let mut live2 = live.clone();
                    live2.push((adm.sequence, full_weight(d)));
                    let mut trace2 = trace.clone();
                    trace2.push(Op::Admit(d));
                    queue.push_back((next, live2, trace2));
                }
            }
        }
        // Releases.
        for (n, &(id, w)) in live.iter().enumerate() {
            let mut next = table.clone();
            if next.release(id, w).is_ok() && seen.insert(state_key(&next)) {
                let mut live2 = live.clone();
                live2.remove(n);
                let mut trace2 = trace.clone();
                trace2.push(Op::Release(n));
                queue.push_back((next, live2, trace2));
            }
        }
    }
    report
}

/// Replays a counterexample script on a fresh table of the given
/// allocator and returns the final table (every op must apply cleanly).
pub fn replay(allocator: AllocatorKind, trace: &[Op]) -> Result<HighPriorityTable, String> {
    let mut table = HighPriorityTable::with_allocator(allocator);
    let mut live: Vec<(SequenceId, Weight)> = Vec::new();
    for (step, op) in trace.iter().enumerate() {
        match *op {
            Op::Admit(d) => {
                let k = live.len();
                let adm = table
                    .admit(sl_of(k), vl_of(k), d, full_weight(d))
                    .map_err(|e| format!("step {step}: {op} failed: {e}"))?;
                live.push((adm.sequence, full_weight(d)));
            }
            Op::Release(n) => {
                let (id, w) = *live
                    .get(n)
                    .ok_or_else(|| format!("step {step}: {op} out of range"))?;
                table
                    .release(id, w)
                    .map_err(|e| format!("step {step}: {op} failed: {e}"))?;
                live.remove(n);
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_counterexample_is_found_and_replays() {
        let report = search(AllocatorKind::FirstFit, 5_000);
        let ce = report
            .counterexample
            .expect("first-fit must violate canonicity");
        // Known shortest failure: two singles on slots 0 and 1.
        assert!(
            ce.trace.len() <= 3,
            "expected a short trace, got {:?}",
            ce.trace
        );
        let table = replay(AllocatorKind::FirstFit, &ce.trace).unwrap();
        assert_eq!(table.occupancy(), ce.occupancy);
        assert!(
            check_table(&table).is_err(),
            "replay must reproduce the violation"
        );
    }

    #[test]
    fn reverse_fit_counterexample_is_found_and_replays() {
        let report = search(AllocatorKind::ReverseFit, 5_000);
        let ce = report
            .counterexample
            .expect("reverse-fit must violate canonicity");
        let table = replay(AllocatorKind::ReverseFit, &ce.trace).unwrap();
        assert_eq!(table.occupancy(), ce.occupancy);
        assert!(check_table(&table).is_err());
    }

    #[test]
    fn bit_reversal_survives_the_same_search() {
        let report = search(AllocatorKind::BitReversal, 1_500);
        assert!(
            report.counterexample.is_none(),
            "bit-reversal violated canonicity: {}",
            report
                .counterexample
                .map(|c| c.to_string())
                .unwrap_or_default()
        );
        assert!(report.states >= 1_500 || !report.truncated);
    }

    #[test]
    fn replay_rejects_malformed_scripts() {
        assert!(replay(AllocatorKind::BitReversal, &[Op::Release(0)]).is_err());
    }
}
