//! # iba-verify — bounded model checking of the arbitration-table allocator
//!
//! The paper (and its companion technical report TR DIAB-03-01) claims
//! that a 64-entry high-priority table driven exclusively through the
//! **bit-reversal** allocator plus defragmentation always keeps its
//! free entries in the *canonical* layout: free entries can serve the
//! most restrictive request their count permits. This crate checks the
//! claim mechanically against the **production implementation**
//! (`iba_core::table::HighPriorityTable`), not a re-model of it:
//!
//! * [`quotient`] — exhaustive breadth-first exploration of every state
//!   reachable from the empty table via `admit`/`release`, quotiented
//!   by the *distance multiset* of the live sequences. The reduction is
//!   sound for bit-reversal + defrag because the defragmented layout is
//!   a deterministic function of the multiset; the 2^64 raw occupancy
//!   space collapses to the 27 337 multisets that fit in 64 slots.
//! * [`concrete`] — trace-carrying exploration of raw table states
//!   (no quotient), used to *reproduce counterexamples* for the
//!   first-fit and reverse-fit baselines, where the reduction does not
//!   apply. Every violation comes with the exact `admit`/`release`
//!   script that reaches it, replayable via [`concrete::replay`].
//! * [`crossval`] — validates the quotient reduction itself against
//!   concrete exploration on scaled-down tables (8/16/32 entries) via
//!   [`iba_core::model::MiniTable`].
//! * [`sweep`] — the unabridged admit-all-then-release-in-every-rotation
//!   sweep over all fitting multisets (the bounded version lives in the
//!   core property tests).
//!
//! The `iba-verify` binary drives all four; `--exhaustive` removes the
//! state bounds (see `cargo run -p iba-verify -- --help`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod concrete;
pub mod crossval;
pub mod quotient;
pub mod sweep;

use iba_core::Distance;

/// Index of a distance in [`Distance::ALL`] (0 = D2 … 5 = D64).
#[must_use]
pub fn distance_index(d: Distance) -> usize {
    d.log2() as usize - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_index_is_positional() {
        for (i, d) in Distance::ALL.into_iter().enumerate() {
            assert_eq!(distance_index(d), i);
        }
    }

    /// The verify crate is also the caller of record for the named
    /// invariants promoted out of `debug_assert!`s across the workspace.
    #[test]
    fn named_invariants_are_callable() {
        // core: weight accounting.
        assert!(iba_core::invariants::per_slot_weight_in_range(255, 1));
        assert!(!iba_core::invariants::per_slot_weight_in_range(256, 1));
        assert!(iba_core::invariants::released_sequence_is_drained(0, 0));
        assert!(!iba_core::invariants::released_sequence_is_drained(0, 5));
        // sim: event-loop invariants.
        assert!(iba_sim::invariants::time_monotone(3, 4));
        assert!(iba_sim::invariants::grant_matches_head(64, 64));
        assert!(iba_sim::invariants::unarbitrated_is_management(15));
        // topo: generated fabrics are well-formed.
        let t = iba_topo::irregular::generate(iba_topo::IrregularConfig::paper_default(1));
        iba_topo::validate::check_well_formed(&t).unwrap();
    }
}
