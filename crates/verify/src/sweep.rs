//! Admit-all-then-release-in-every-rotation sweep.
//!
//! For every distance multiset that fits in the 64-entry table: admit
//! all its sequences through the production `admit` path, then release
//! them in rotated admission order — checking
//! [`iba_core::invariants::check_table`] after **every** release and
//! that the table drains back to empty. Exhaustive mode walks all
//! rotations of all 27 337 multisets; bounded mode strides both.

use crate::quotient::{representative, used_entries, Counts};
use iba_core::invariants::check_table;
use iba_core::{Distance, TABLE_ENTRIES};

/// Outcome of a sweep.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Multisets swept.
    pub multisets: usize,
    /// Release orders exercised.
    pub rotations: usize,
    /// Individual releases checked.
    pub releases: usize,
    /// Whether the multiset bound cut the sweep short.
    pub truncated: bool,
    /// Violations found (empty = the property holds on the swept set).
    pub violations: Vec<String>,
}

/// Every distance multiset fitting in `capacity` entries, in
/// lexicographic count order (the empty multiset first).
#[must_use]
pub fn all_fitting_multisets(capacity: usize) -> Vec<Counts> {
    fn go(i: usize, remaining: usize, c: &mut Counts, out: &mut Vec<Counts>) {
        if i == Distance::ALL.len() {
            out.push(*c);
            return;
        }
        let cost = Distance::ALL[i].entries();
        let mut k = 0usize;
        while k * cost <= remaining {
            c[i] = k as u8;
            go(i + 1, remaining - k * cost, c, out);
            k += 1;
        }
        c[i] = 0;
    }
    let mut out = Vec::new();
    go(0, capacity, &mut [0; 6], &mut out);
    out
}

/// Sweeps the multiset space. With `full_rotations`, every rotation of
/// the admission order is released; otherwise rotations `{0, 1, n-1}`.
/// At most `max_multisets` multisets are processed (`usize::MAX` for
/// the exhaustive run).
#[must_use]
pub fn rotation_sweep(full_rotations: bool, max_multisets: usize) -> SweepReport {
    let mut report = SweepReport::default();
    let multisets = all_fitting_multisets(TABLE_ENTRIES);
    for counts in &multisets {
        if report.multisets >= max_multisets {
            report.truncated = true;
            break;
        }
        report.multisets += 1;

        let (table, ids) = match representative(counts) {
            Ok(pair) => pair,
            Err(detail) => {
                report.violations.push(format!("{counts:?}: {detail}"));
                continue;
            }
        };
        if let Err(detail) = check_table(&table) {
            report
                .violations
                .push(format!("{counts:?}: after admit-all: {detail}"));
            continue;
        }
        debug_assert_eq!(table.free_entries(), TABLE_ENTRIES - used_entries(counts));

        let n = ids.len();
        let rotations: Vec<usize> = if n == 0 {
            Vec::new()
        } else if full_rotations {
            (0..n).collect()
        } else {
            let mut r = vec![0, 1 % n, n - 1];
            r.dedup();
            r
        };

        for r in rotations {
            report.rotations += 1;
            let mut t = table.clone();
            for step in 0..n {
                let id = ids[(r + step) % n];
                let Some(info) = t.sequence(id) else {
                    report.violations.push(format!(
                        "{counts:?} rot {r}: sequence {id:?} vanished before release"
                    ));
                    break;
                };
                if let Err(e) = t.release(id, info.total_weight) {
                    report
                        .violations
                        .push(format!("{counts:?} rot {r}: release failed: {e}"));
                    break;
                }
                report.releases += 1;
                if let Err(detail) = check_table(&t) {
                    report
                        .violations
                        .push(format!("{counts:?} rot {r} after release {step}: {detail}"));
                    break;
                }
            }
            if t.free_entries() != TABLE_ENTRIES {
                report.violations.push(format!(
                    "{counts:?} rot {r}: table did not drain ({} entries still busy)",
                    TABLE_ENTRIES - t.free_entries()
                ));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_matches_counting_dp() {
        assert_eq!(
            all_fitting_multisets(TABLE_ENTRIES).len(),
            crate::quotient::count_fitting_multisets(TABLE_ENTRIES)
        );
        assert_eq!(all_fitting_multisets(0), vec![[0u8; 6]]);
    }

    #[test]
    fn every_multiset_fits() {
        for c in all_fitting_multisets(TABLE_ENTRIES) {
            assert!(used_entries(&c) <= TABLE_ENTRIES);
        }
    }

    /// The unabridged satellite property: every fitting multiset,
    /// every rotation. Ignored by default (minutes); the default CI
    /// path covers it via `iba-verify --exhaustive`.
    #[test]
    #[ignore = "minutes of work; run explicitly or via iba-verify --exhaustive"]
    fn full_rotation_sweep_is_clean() {
        let report = rotation_sweep(true, usize::MAX);
        assert!(!report.truncated);
        assert_eq!(
            report.multisets,
            crate::quotient::count_fitting_multisets(TABLE_ENTRIES)
        );
        assert!(
            report.violations.is_empty(),
            "{:?}",
            report.violations.first()
        );
    }

    #[test]
    fn bounded_rotation_sweep_is_clean() {
        let report = rotation_sweep(false, 1_500);
        assert!(report.truncated);
        assert_eq!(report.multisets, 1_500);
        assert!(
            report.violations.is_empty(),
            "{:?}",
            report.violations.first()
        );
        assert!(report.releases > 0);
    }
}
