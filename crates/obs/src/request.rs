//! Reassembles per-request causal traces from the ring tracer's
//! [`TraceEvent::Request`] records.
//!
//! The admission-service coordinator stamps every trace operation
//! with its request id (the operation's index in the trace) and emits
//! `dispatch`/`finalize` records; shard workers emit
//! `vote`/`commit`/`abort` records for the hops they own. Records
//! from different rings carry timestamps from different clocks (the
//! coordinator ticks on finalized operations, workers on dispatched
//! ones), so the reassembler orders each request's records by the
//! **causal key** `(stage, path, shard, time)` — the protocol
//! guarantees stage codes are causally ordered (see
//! [`crate::trace::request_stage`]) — rather than by timestamp
//! interleaving, and the resulting span trees are deterministic at
//! any shard count.

use std::collections::BTreeMap;

use crate::trace::{request_stage, TraceEvent};

/// One causal stage record of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageRecord {
    /// The recorder's logical time when the stage was recorded.
    pub time: u64,
    /// Stage code (a [`request_stage`] constant).
    pub stage: u8,
    /// The shard that observed the stage (coordinator records use 0).
    pub shard: u8,
    /// Hop index within the request's path, or
    /// [`request_stage::NO_PATH`] for non-hop stages.
    pub path: u8,
}

/// All stages of one request, in causal order.
#[derive(Clone, Debug)]
pub struct RequestSpan {
    /// The request id (the trace-op index).
    pub rid: u32,
    /// Stage records sorted by `(stage, path, shard, time)`.
    pub stages: Vec<StageRecord>,
}

impl RequestSpan {
    /// Whether the request aborted (any `abort` stage present).
    #[must_use]
    pub fn aborted(&self) -> bool {
        self.stages.iter().any(|s| s.stage == request_stage::ABORT)
    }

    /// The request's final stage label (for summaries).
    #[must_use]
    pub fn outcome(&self) -> &'static str {
        if self.aborted() {
            "abort"
        } else if self.stages.iter().any(|s| s.stage == request_stage::COMMIT) {
            "commit"
        } else {
            "dispatch"
        }
    }

    /// Renders the span tree as indented text: coordinator stages
    /// (dispatch/finalize) at the first level, per-hop shard stages
    /// nested under them.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("request rid={} outcome={}\n", self.rid, self.outcome());
        for s in &self.stages {
            let hop_level = matches!(
                s.stage,
                request_stage::VOTE | request_stage::COMMIT | request_stage::ABORT
            );
            let indent = if hop_level { "    " } else { "  " };
            out.push_str(indent);
            out.push_str(&format!("{:<9}", request_stage::label(s.stage)));
            out.push_str(&format!(" t={}", s.time));
            if hop_level {
                out.push_str(&format!(" shard={}", s.shard));
            }
            if s.path != request_stage::NO_PATH {
                out.push_str(&format!(" hop={}", s.path));
            }
            out.push('\n');
        }
        out
    }
}

/// Groups raw `(time, event)` records into per-request spans, in
/// request-id order, each span causally sorted. Non-request events
/// are ignored, so a whole decoded ring can be passed straight in.
#[must_use]
pub fn reassemble(records: &[(u64, TraceEvent)]) -> Vec<RequestSpan> {
    let mut by_rid: BTreeMap<u32, Vec<StageRecord>> = BTreeMap::new();
    for (time, ev) in records {
        if let TraceEvent::Request {
            rid,
            stage,
            shard,
            path,
        } = *ev
        {
            by_rid.entry(rid).or_default().push(StageRecord {
                time: *time,
                stage,
                shard,
                path,
            });
        }
    }
    by_rid
        .into_iter()
        .map(|(rid, mut stages)| {
            stages.sort_by_key(|s| (s.stage, s.path, s.shard, s.time));
            RequestSpan { rid, stages }
        })
        .collect()
}

/// Renders every span tree, separated by blank lines — the body of a
/// flight-recorder `requests.txt`.
#[must_use]
pub fn render_all(spans: &[RequestSpan]) -> String {
    if spans.is_empty() {
        return "no request records\n".to_string();
    }
    spans
        .iter()
        .map(RequestSpan::render)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(rid: u32, stage: u8, shard: u8, path: u8) -> TraceEvent {
        TraceEvent::Request {
            rid,
            stage,
            shard,
            path,
        }
    }

    #[test]
    fn reassembles_causal_order_across_interleaved_rings() {
        // Records arrive shuffled (two rings drained back to back,
        // worker clocks ahead of the coordinator's).
        let records = vec![
            (
                5,
                req(1, request_stage::FINALIZE, 0, request_stage::NO_PATH),
            ),
            (3, req(1, request_stage::COMMIT, 2, 1)),
            (
                9,
                req(2, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
            (2, req(1, request_stage::VOTE, 2, 1)),
            (2, req(1, request_stage::VOTE, 0, 0)),
            (
                1,
                req(1, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
            (3, req(1, request_stage::COMMIT, 0, 0)),
            (7, TraceEvent::Release), // non-request noise: ignored
        ];
        let spans = reassemble(&records);
        assert_eq!(spans.len(), 2);
        let one = &spans[0];
        assert_eq!(one.rid, 1);
        assert_eq!(one.outcome(), "commit");
        let order: Vec<(u8, u8)> = one.stages.iter().map(|s| (s.stage, s.path)).collect();
        assert_eq!(
            order,
            vec![
                (request_stage::DISPATCH, request_stage::NO_PATH),
                (request_stage::VOTE, 0),
                (request_stage::VOTE, 1),
                (request_stage::COMMIT, 0),
                (request_stage::COMMIT, 1),
                (request_stage::FINALIZE, request_stage::NO_PATH),
            ]
        );
        assert_eq!(spans[1].rid, 2);
        assert_eq!(spans[1].outcome(), "dispatch");
    }

    #[test]
    fn aborted_requests_are_flagged() {
        let records = vec![
            (
                1,
                req(4, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
            (2, req(4, request_stage::VOTE, 1, 0)),
            (3, req(4, request_stage::ABORT, 1, 0)),
            (
                4,
                req(4, request_stage::FINALIZE, 0, request_stage::NO_PATH),
            ),
        ];
        let spans = reassemble(&records);
        assert!(spans[0].aborted());
        assert_eq!(spans[0].outcome(), "abort");
        let text = spans[0].render();
        assert!(text.starts_with("request rid=4 outcome=abort\n"));
        assert!(text.contains("    abort"));
        assert!(text.contains("shard=1"));
    }

    #[test]
    fn render_all_handles_empty_and_joins_spans() {
        assert_eq!(render_all(&[]), "no request records\n");
        let records = vec![
            (
                1,
                req(0, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
            (
                2,
                req(1, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
        ];
        let text = render_all(&reassemble(&records));
        assert_eq!(text.matches("request rid=").count(), 2);
    }
}
