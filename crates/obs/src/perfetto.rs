//! Perfetto / Chrome trace-event JSON exporter.
//!
//! Merges wall-clock span records ([`crate::span::SpanRecorder`]) and
//! simulator-cycle events ([`crate::trace::RingTracer`]) onto one
//! trace-event timeline that loads directly in <https://ui.perfetto.dev>
//! (or `chrome://tracing`):
//!
//! * **pid 1 — wall clock**: span begin/end pairs (`ph:"B"/"E"`), one
//!   track per recording thread, timestamps in microseconds since the
//!   span recorder's epoch.
//! * **pid 2 — sim cycles**: each 16-byte ring-tracer record as an
//!   instant event (`ph:"i"`), one track per virtual lane, mapping one
//!   simulator cycle to one microsecond so slot gaps are readable on
//!   the same zoom scale.
//! * **pid 3 — requests**: per-request causal traces from the
//!   admission-service plane ([`crate::request`]), one track per
//!   request id: a begin/end pair spanning dispatch→finalize with an
//!   instant per protocol stage in causal order.
//!
//! Every event carries the `ph`/`ts`/`pid`/`tid`/`name` keys the
//! trace-event format requires, and events are stably sorted by
//! timestamp, so per-track order is chronological and begin always
//! precedes its end. The output is emitted by the workspace's own
//! [`crate::json::Json`] serializer — no serde, per the offline-build
//! contract.

use crate::json::Json;
use crate::span::{SpanPhase, SpanRecorder};
use crate::trace::{RingTracer, TraceEvent};

/// Process id of the wall-clock (span) track group.
pub const PID_WALL_CLOCK: i64 = 1;
/// Process id of the simulator-cycle track group.
pub const PID_SIM_CYCLES: i64 = 2;
/// Process id of the per-request causal-trace track group.
pub const PID_REQUESTS: i64 = 3;

fn event(ph: &str, ts: Json, pid: i64, tid: Json, name: &str) -> Vec<(String, Json)> {
    vec![
        ("name".to_string(), Json::str(name)),
        ("ph".to_string(), Json::str(ph)),
        ("ts".to_string(), ts),
        ("pid".to_string(), Json::Int(pid)),
        ("tid".to_string(), tid),
    ]
}

fn metadata(name: &str, pid: i64, tid: Option<i64>, label: &str) -> Json {
    let mut fields = event("M", Json::Int(0), pid, Json::Int(tid.unwrap_or(0)), name);
    fields.push((
        "args".to_string(),
        Json::Object(vec![("name".to_string(), Json::str(label))]),
    ));
    Json::Object(fields)
}

fn sim_event_fields(ev: &TraceEvent) -> (u8, &'static str, Vec<(String, Json)>) {
    match *ev {
        TraceEvent::Grant { vl, bytes, served } => (
            vl,
            "grant",
            vec![
                ("bytes".to_string(), Json::uint(bytes)),
                ("table".to_string(), Json::str(served.label())),
            ],
        ),
        TraceEvent::HolStall { vl } => (vl, "hol-stall", vec![]),
        TraceEvent::WeightExhausted { vl } => (vl, "weight-exhausted", vec![]),
        TraceEvent::AuditViolation {
            vl,
            gap_slots,
            budget_slots,
        } => (
            vl,
            "audit-violation",
            vec![
                ("gap_slots".to_string(), Json::uint(u64::from(gap_slots))),
                (
                    "budget_slots".to_string(),
                    Json::uint(u64::from(budget_slots)),
                ),
            ],
        ),
        TraceEvent::Admit { sl } => (sl, "cac-admit", vec![]),
        TraceEvent::Reject { reason } => (
            0,
            "cac-reject",
            vec![("reason".to_string(), Json::str(reason.label()))],
        ),
        TraceEvent::Release => (0, "cac-release", vec![]),
        TraceEvent::AllocSelect { depth, found } => (
            0,
            "alloc-select",
            vec![
                ("depth".to_string(), Json::uint(u64::from(depth))),
                ("found".to_string(), Json::Bool(found)),
            ],
        ),
        TraceEvent::Fault { code, port, detail } => (
            0,
            crate::trace::fault_code::label(code),
            vec![
                ("port".to_string(), Json::uint(u64::from(port))),
                ("detail".to_string(), Json::uint(u64::from(detail))),
            ],
        ),
        TraceEvent::Request {
            rid,
            stage,
            shard,
            path,
        } => (
            0,
            crate::trace::request_stage::label(stage),
            vec![
                ("rid".to_string(), Json::uint(u64::from(rid))),
                ("shard".to_string(), Json::uint(u64::from(shard))),
                ("hop".to_string(), Json::uint(u64::from(path))),
            ],
        ),
        TraceEvent::Serve {
            code,
            shard,
            detail,
        } => (
            0,
            crate::trace::serve_code::label(code),
            vec![
                ("shard".to_string(), Json::uint(u64::from(shard))),
                ("detail".to_string(), Json::uint(u64::from(detail))),
            ],
        ),
    }
}

/// Builds the trace-event JSON document for span and sim sources —
/// [`perfetto_trace_full`] with no request records.
#[must_use]
pub fn perfetto_trace(spans: Option<&SpanRecorder>, sim: Option<&RingTracer>) -> Json {
    perfetto_trace_full(spans, sim, &[])
}

/// Builds the trace-event JSON document for the given sources. Any
/// source may be absent or empty; the result is always a well-formed
/// trace with a `traceEvents` array. `requests` is a drained list of
/// [`TraceEvent::Request`] records (other kinds are ignored), rendered
/// as one track per request in causal order: worker and coordinator
/// clocks are not comparable, so each track's timestamps are the
/// running maximum over the causally sorted stages — monotone per
/// track by construction.
#[must_use]
pub fn perfetto_trace_full(
    spans: Option<&SpanRecorder>,
    sim: Option<&RingTracer>,
    requests: &[(u64, TraceEvent)],
) -> Json {
    // (sort key in ns, insertion index, event) — stable sort keeps
    // per-track order and begin-before-end at equal timestamps.
    let mut timeline: Vec<(u128, Json)> = Vec::new();
    let mut head: Vec<Json> = Vec::new();

    if let Some(spans) = spans {
        head.push(metadata(
            "process_name",
            PID_WALL_CLOCK,
            None,
            "wall clock (spans)",
        ));
        for rec in spans.records() {
            let ph = match rec.phase {
                SpanPhase::Begin => "B",
                SpanPhase::End => "E",
            };
            // Chrome trace `ts` is in microseconds; keep nanosecond
            // precision as a fraction.
            let ts = Json::Float(rec.ts_ns as f64 / 1000.0);
            let tid = Json::uint(rec.tid);
            timeline.push((
                u128::from(rec.ts_ns),
                Json::Object(event(ph, ts, PID_WALL_CLOCK, tid, rec.name)),
            ));
        }
    }

    if let Some(sim) = sim {
        head.push(metadata("process_name", PID_SIM_CYCLES, None, "sim cycles"));
        let mut lanes_seen = [false; 256];
        for (time, ev) in sim.records() {
            let (lane, name, mut args) = sim_event_fields(&ev);
            args.push(("cycle".to_string(), Json::uint(time)));
            lanes_seen[usize::from(lane)] = true;
            // One sim cycle maps to one microsecond on the trace axis.
            let mut fields = event(
                "i",
                Json::uint(time),
                PID_SIM_CYCLES,
                Json::Int(i64::from(lane)),
                name,
            );
            fields.push(("s".to_string(), Json::str("t")));
            fields.push(("args".to_string(), Json::Object(args)));
            // Sim cycles sort on the same ns axis as spans (µs × 1000).
            timeline.push((u128::from(time) * 1000, Json::Object(fields)));
        }
        for (lane, seen) in lanes_seen.iter().enumerate() {
            if *seen {
                head.push(metadata(
                    "thread_name",
                    PID_SIM_CYCLES,
                    Some(lane as i64),
                    &format!("lane {lane}"),
                ));
            }
        }
    }

    let request_spans = crate::request::reassemble(requests);
    if !request_spans.is_empty() {
        head.push(metadata("process_name", PID_REQUESTS, None, "requests"));
    }
    for span in &request_spans {
        let tid = Json::uint(u64::from(span.rid));
        head.push(metadata(
            "thread_name",
            PID_REQUESTS,
            Some(i64::from(span.rid)),
            &format!("request {} ({})", span.rid, span.outcome()),
        ));
        let mut clock = span.stages.first().map_or(0, |s| s.time);
        let name = format!("request {}", span.rid);
        timeline.push((
            u128::from(clock) * 1000,
            Json::Object(event(
                "B",
                Json::uint(clock),
                PID_REQUESTS,
                tid.clone(),
                &name,
            )),
        ));
        for s in &span.stages {
            clock = clock.max(s.time);
            let mut fields = event(
                "i",
                Json::uint(clock),
                PID_REQUESTS,
                tid.clone(),
                crate::trace::request_stage::label(s.stage),
            );
            fields.push(("s".to_string(), Json::str("t")));
            fields.push((
                "args".to_string(),
                Json::Object(vec![
                    ("shard".to_string(), Json::uint(u64::from(s.shard))),
                    ("hop".to_string(), Json::uint(u64::from(s.path))),
                    ("recorded_at".to_string(), Json::uint(s.time)),
                ]),
            ));
            timeline.push((u128::from(clock) * 1000, Json::Object(fields)));
        }
        timeline.push((
            u128::from(clock) * 1000,
            Json::Object(event("E", Json::uint(clock), PID_REQUESTS, tid, &name)),
        ));
    }

    let mut order: Vec<usize> = (0..timeline.len()).collect();
    order.sort_by_key(|&i| timeline[i].0);
    let mut events = head;
    events.extend(order.into_iter().map(|i| timeline[i].1.clone()));

    Json::Object(vec![
        ("traceEvents".to_string(), Json::Array(events)),
        ("displayTimeUnit".to_string(), Json::str("ms")),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::ServedKind;

    fn sample_trace() -> Json {
        let mut spans = SpanRecorder::with_epoch(16, std::time::Instant::now());
        spans.push_raw("harness.worker", 7, 1_000, SpanPhase::Begin);
        spans.push_raw("sim.run_until", 7, 2_500, SpanPhase::Begin);
        spans.push_raw("sim.run_until", 7, 8_000, SpanPhase::End);
        spans.push_raw("harness.worker", 7, 9_000, SpanPhase::End);
        let mut sim = RingTracer::new(16);
        sim.push(
            3,
            TraceEvent::Grant {
                vl: 2,
                bytes: 256,
                served: ServedKind::High,
            },
        );
        sim.push(5, TraceEvent::WeightExhausted { vl: 2 });
        sim.push(
            9,
            TraceEvent::AuditViolation {
                vl: 2,
                gap_slots: 8,
                budget_slots: 4,
            },
        );
        perfetto_trace(Some(&spans), Some(&sim))
    }

    fn trace_events(doc: &Json) -> &[Json] {
        match doc.get("traceEvents") {
            Some(Json::Array(items)) => items,
            _ => panic!("traceEvents array missing"),
        }
    }

    #[test]
    fn every_event_has_required_keys() {
        let doc = sample_trace();
        let events = trace_events(&doc);
        assert!(!events.is_empty());
        for ev in events {
            for key in ["ph", "ts", "pid", "tid", "name"] {
                assert!(ev.get(key).is_some(), "missing `{key}` in {ev:?}");
            }
        }
    }

    #[test]
    fn timestamps_are_monotone_per_track() {
        let doc = sample_trace();
        let mut last: std::collections::HashMap<(String, String), f64> =
            std::collections::HashMap::new();
        for ev in trace_events(&doc) {
            if ev.get("ph") == Some(&Json::str("M")) {
                continue;
            }
            let pid = format!("{:?}", ev.get("pid"));
            let tid = format!("{:?}", ev.get("tid"));
            let ts = ev.get("ts").and_then(Json::as_f64).expect("numeric ts");
            let prev = last.insert((pid, tid), ts);
            if let Some(prev) = prev {
                assert!(prev <= ts, "track went backwards: {prev} > {ts}");
            }
        }
    }

    #[test]
    fn output_parses_as_json_and_roundtrips() {
        let doc = sample_trace();
        let text = doc.pretty();
        assert_eq!(Json::parse(&text), Ok(doc));
    }

    #[test]
    fn spans_and_sim_events_land_on_their_pids() {
        let doc = sample_trace();
        let events = trace_events(&doc);
        let pid_of = |ev: &Json| ev.get("pid").and_then(Json::as_f64);
        assert!(events
            .iter()
            .any(|e| e.get("ph") == Some(&Json::str("B"))
                && pid_of(e) == Some(PID_WALL_CLOCK as f64)));
        assert!(events
            .iter()
            .any(|e| e.get("ph") == Some(&Json::str("i"))
                && pid_of(e) == Some(PID_SIM_CYCLES as f64)));
        assert!(events
            .iter()
            .any(|e| e.get("name") == Some(&Json::str("audit-violation"))));
    }

    #[test]
    fn empty_sources_still_emit_a_valid_trace() {
        let doc = perfetto_trace(None, None);
        assert_eq!(trace_events(&doc).len(), 0);
        assert!(Json::parse(&doc.pretty()).is_ok());
    }

    #[test]
    fn request_records_become_one_track_per_request() {
        use crate::trace::request_stage;
        let req = |rid: u32, stage: u8, shard: u8, path: u8| TraceEvent::Request {
            rid,
            stage,
            shard,
            path,
        };
        // Worker clocks run ahead of the coordinator's: the commit was
        // recorded at t=9 but the finalize at t=4.
        let records = vec![
            (
                1,
                req(0, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
            (9, req(0, request_stage::COMMIT, 1, 0)),
            (
                4,
                req(0, request_stage::FINALIZE, 0, request_stage::NO_PATH),
            ),
            (
                2,
                req(1, request_stage::DISPATCH, 0, request_stage::NO_PATH),
            ),
        ];
        let doc = perfetto_trace_full(None, None, &records);
        let events = trace_events(&doc);
        let on_pid3 = |e: &&Json| {
            e.get("pid").and_then(Json::as_f64) == Some(PID_REQUESTS as f64)
                && e.get("ph") != Some(&Json::str("M"))
        };
        // Two tracks: each has B + E plus one instant per stage.
        let begins = events
            .iter()
            .filter(|e| on_pid3(e) && e.get("ph") == Some(&Json::str("B")))
            .count();
        assert_eq!(begins, 2);
        // Per-track timestamps never go backwards despite the worker
        // clock skew (the finalize instant is clamped up to t=9).
        let mut last: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for e in events.iter().filter(on_pid3) {
            let tid = format!("{:?}", e.get("tid"));
            let ts = e.get("ts").and_then(Json::as_f64).unwrap();
            if let Some(prev) = last.insert(tid, ts) {
                assert!(prev <= ts, "request track went backwards");
            }
        }
        assert!(events
            .iter()
            .any(|e| e.get("args").and_then(|a| a.get("name"))
                == Some(&Json::str("request 0 (commit)"))));
    }
}
