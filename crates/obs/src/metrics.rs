//! The metrics registry: counters, gauges, fixed-bucket histograms and
//! the flat [`Metrics`] struct holding every metric of the contract.
//!
//! Recording is allocation-free: every metric lives inline in
//! [`Metrics`] (per-lane metrics are fixed 16-element arrays) and every
//! update is a couple of integer operations. Reading happens through
//! [`Metrics::snapshot`], which produces an ordered list of
//! [`Sample`]s for rendering or serialization.
//!
//! The canonical metric names live in [`METRIC_NAMES`]; the metrics
//! contract (`METRICS.md`) documents each one and `cargo xtask check`
//! cross-checks the two.

/// A monotonic counter. Increments saturate at `u64::MAX` instead of
/// wrapping, so a counter can never appear to go backwards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Folds another counter in (saturating sum; commutative).
    #[inline]
    pub fn merge(&mut self, other: Counter) {
        self.add(other.0);
    }

    /// Adds one, saturating at `u64::MAX`.
    #[inline]
    pub fn incr(&mut self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// A counter holding exactly `v` (used by delta encoding).
    #[must_use]
    pub fn from_get(v: u64) -> Counter {
        Counter(v)
    }
}

/// A gauge: a signed value that can move both ways (e.g. live
/// connection count). Updates saturate at the `i64` limits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge(i64);

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&mut self, v: i64) {
        self.0 = v;
    }

    /// Moves the gauge by `delta` (may be negative), saturating.
    #[inline]
    pub fn add(&mut self, delta: i64) {
        self.0 = self.0.saturating_add(delta);
    }

    /// Folds another gauge in by taking the maximum — the only
    /// order-independent combination for a level-style reading (used
    /// when per-worker registries are merged).
    #[inline]
    pub fn merge(&mut self, other: Gauge) {
        self.0 = self.0.max(other.0);
    }

    /// Current value.
    #[must_use]
    pub fn get(self) -> i64 {
        self.0
    }
}

/// Number of buckets in a [`Histogram`]: one zero bucket, sixteen
/// power-of-two buckets and one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 18;

/// A fixed-bucket histogram over `u64` values.
///
/// Bucket boundaries are powers of two: bucket 0 holds the value `0`,
/// bucket `i` (for `1 <= i <= 16`) holds values in
/// `[2^(i-1), 2^i)`, and the last bucket holds everything at or above
/// `2^16 = 65536`. This covers every quantity the workspace observes
/// (probe depths <= 32, queue depths, packet sizes) with constant
/// memory and no allocation.
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// The bucket a value falls into.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive `(lower, upper)` value bounds of bucket `i`; the last
    /// bucket's upper bound is `u64::MAX`.
    #[must_use]
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            _ if i >= HISTOGRAM_BUCKETS - 1 => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the inclusive upper
    /// bound of the bucket where the cumulative count crosses
    /// `q * count`. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// Mean of the observed values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` bucket-by-bucket. Histograms share
    /// fixed bucket boundaries, so merging is an exact, commutative and
    /// associative sum — the result is independent of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Removes an `earlier` cumulative reading of the **same**
    /// histogram, leaving the observations made since — the inverse of
    /// [`Histogram::merge`] for the prefix case. Subtraction saturates,
    /// so a mismatched pair degrades to empty buckets instead of
    /// wrapping.
    pub fn subtract(&mut self, earlier: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *b = b.saturating_sub(*o);
        }
        self.count = self.count.saturating_sub(earlier.count);
        self.sum = self.sum.saturating_sub(earlier.sum);
    }
}

/// Sixteen instances of a metric, indexed by lane (VL or SL).
#[derive(Clone, Copy, Debug, Default)]
pub struct PerLane<T>(pub [T; 16]);

impl<T> PerLane<T> {
    /// The metric of lane `i` (masked to 0..16, so a corrupt lane
    /// index can never panic the recorder).
    #[inline]
    pub fn lane(&mut self, i: u8) -> &mut T {
        &mut self.0[(i & 0x0F) as usize]
    }
}

/// Every metric name of the contract, in snapshot order. Each name
/// must be documented in `METRICS.md` (checked by `cargo xtask
/// check`). Keep this list in sync with [`Metrics::snapshot`].
pub const METRIC_NAMES: &[&str] = &[
    "alloc_probe_total",
    "alloc_probe_rejected_total",
    "alloc_select_fail_total",
    "alloc_probe_depth",
    "arb_grant_total",
    "arb_bytes_total",
    "arb_high_bytes_total",
    "arb_low_bytes_total",
    "arb_vl15_bytes_total",
    "arb_weight_exhausted_total",
    "arb_hol_stall_total",
    "arb_queue_depth",
    "sim_events_total",
    "sim_event_queue_depth",
    "schedule_compile_total",
    "schedule_invalidate_total",
    "cac_admit_total",
    "cac_reject_total",
    "cac_release_total",
    "harness_runs_total",
    "harness_threads",
    "audit_gap_max",
    "audit_bound_cycles",
    "audit_violations_total",
    "fault_injected_total",
    "fault_blocked_total",
    "recovery_repairs_total",
    "recovery_evicted_total",
    "recovery_reinstalls_total",
    "recovery_retries_total",
    "recovery_degraded_total",
    "recovery_backoff_cycles",
    "span_records_total",
    "span_dropped_total",
    "serve_shard_admit_total",
    "serve_shard_reject_total",
    "serve_shard_rollback_total",
    "serve_queue_depth",
    "serve_batch_latency",
    "serve_crash_total",
    "serve_journal_replay_total",
    "serve_timeout_total",
    "serve_shed_total",
    "timeline_window_total",
    "slo_eval_total",
    "slo_breach_total",
];

/// A metric dimension attached to a [`Sample`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dim {
    /// No dimension: a scalar metric.
    None,
    /// A virtual lane (0..16).
    Vl(u8),
    /// A service level (0..16).
    Sl(u8),
    /// A rejection reason label.
    Reason(&'static str),
    /// An admission-service shard index (0..16).
    Shard(u8),
    /// A load-shedding ladder rung (0 = shed, 1 = degraded install).
    Rung(u8),
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dim::None => Ok(()),
            Dim::Vl(v) => write!(f, "vl={v}"),
            Dim::Sl(s) => write!(f, "sl={s}"),
            Dim::Reason(r) => write!(f, "reason={r}"),
            Dim::Shard(s) => write!(f, "shard={s}"),
            Dim::Rung(r) => write!(f, "rung={r}"),
        }
    }
}

/// One reading in a snapshot.
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// A counter or gauge reading.
    Count(u64),
    /// A histogram reading: count, sum and the two contract quantiles.
    Hist {
        /// Observations recorded.
        count: u64,
        /// Sum of observed values.
        sum: u64,
        /// Approximate median (bucket upper bound).
        p50: u64,
        /// Approximate 99th percentile (bucket upper bound).
        p99: u64,
    },
}

/// One named, dimensioned metric reading.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Contract name (one of [`METRIC_NAMES`]).
    pub name: &'static str,
    /// Dimension, if the metric has one.
    pub dim: Dim,
    /// The reading.
    pub value: SampleValue,
}

/// Rejection-reason labels, in `cac_reject_total` snapshot order.
pub const REJECT_REASONS: [&str; 5] = [
    "no_free_sequence",
    "capacity_exceeded",
    "request_too_large",
    "invalid",
    "overloaded",
];

/// The flat metrics registry: one field per contract metric.
///
/// See `METRICS.md` for what each metric means, its units and which
/// paper figure/table it validates.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// `alloc_probe_total`: E-set probes performed by allocators.
    pub alloc_probe: Counter,
    /// `alloc_probe_rejected_total`: probes that hit a busy E-set.
    pub alloc_probe_rejected: Counter,
    /// `alloc_select_fail_total`: selects with no free E-set.
    pub alloc_select_fail: Counter,
    /// `alloc_probe_depth`: probes per successful select.
    pub alloc_probe_depth: Histogram,
    /// `arb_grant_total`: arbitration grants per VL.
    pub arb_grant: PerLane<Counter>,
    /// `arb_bytes_total`: bytes serviced per VL.
    pub arb_bytes: PerLane<Counter>,
    /// `arb_high_bytes_total`: bytes granted by the high table.
    pub arb_high_bytes: Counter,
    /// `arb_low_bytes_total`: bytes granted by the low table.
    pub arb_low_bytes: Counter,
    /// `arb_vl15_bytes_total`: management bytes bypassing arbitration.
    pub arb_vl15_bytes: Counter,
    /// `arb_weight_exhausted_total`: grants that drained the entry
    /// weight, per VL.
    pub arb_weight_exhausted: PerLane<Counter>,
    /// `arb_hol_stall_total`: head-of-line credit stalls per VL.
    pub arb_hol_stall: PerLane<Counter>,
    /// `arb_queue_depth`: queue depth (packets) at grant time.
    pub arb_queue_depth: Histogram,
    /// `sim_events_total`: events processed by the fabric event loop.
    pub sim_events: Counter,
    /// `sim_event_queue_depth`: pending events in the calendar queue,
    /// observed after each pop.
    pub sim_event_queue_depth: Histogram,
    /// `schedule_compile_total`: arbitration tables compiled into grant
    /// schedules.
    pub schedule_compiles: Counter,
    /// `schedule_invalidate_total`: compiled grant schedules invalidated
    /// by a table change (admit, teardown, repair, fault corruption).
    pub schedule_invalidations: Counter,
    /// `cac_admit_total`: admitted connections per SL.
    pub cac_admit: PerLane<Counter>,
    /// `cac_reject_total`: rejected requests, indexed like
    /// [`REJECT_REASONS`].
    pub cac_reject: [Counter; 5],
    /// `cac_release_total`: connection teardowns.
    pub cac_release: Counter,
    /// `harness_runs_total`: sweep points completed by the experiment
    /// harness.
    pub harness_runs: Counter,
    /// `harness_threads`: worker threads used by the last sweep
    /// (merged across registries by maximum).
    pub harness_threads: Gauge,
    /// `audit_gap_max`: worst observed inter-grant gap (cycles) per VL,
    /// from the service-guarantee auditor.
    pub audit_gap_max: PerLane<Gauge>,
    /// `audit_bound_cycles`: the audited cycle budget per VL (the
    /// `d`·slot guarantee translated to worst-case cycles).
    pub audit_bound_cycles: PerLane<Gauge>,
    /// `audit_violations_total`: grants whose gap exceeded the budget,
    /// per VL.
    pub audit_violations: PerLane<Counter>,
    /// `fault_injected_total`: fault actions applied by the
    /// fault-injection calendar.
    pub fault_injected: Counter,
    /// `fault_blocked_total`: arbitration candidates suppressed by an
    /// active fault (link down, VL blackout or credit stall), per VL.
    pub fault_blocked: PerLane<Counter>,
    /// `recovery_repairs_total`: damaged-table repair passes performed
    /// by the recovery manager.
    pub recovery_repairs: Counter,
    /// `recovery_evicted_total`: orphaned/corrupt sequences evicted
    /// during repair.
    pub recovery_evicted: Counter,
    /// `recovery_reinstalls_total`: sequences re-installed after a
    /// repair (at contracted or degraded distance).
    pub recovery_reinstalls: Counter,
    /// `recovery_retries_total`: bounded admission retries taken by the
    /// recovery manager.
    pub recovery_retries: Counter,
    /// `recovery_degraded_total`: re-installs that had to loosen the
    /// contracted distance (graceful-degradation ladder).
    pub recovery_degraded: Counter,
    /// `recovery_backoff_cycles`: deterministic exponential backoff
    /// delay per retry, in cycles.
    pub recovery_backoff_cycles: Histogram,
    /// `span_records_total`: span profiler records exported (explicit
    /// [`crate::span::SpanRecorder::export_into`] only — wall-clock
    /// data never enters a registry implicitly).
    pub span_records: Counter,
    /// `span_dropped_total`: span records overwritten because the span
    /// ring was full.
    pub span_dropped: Counter,
    /// `serve_shard_admit_total`: hop reservations committed per
    /// admission-service shard.
    pub serve_shard_admit: PerLane<Counter>,
    /// `serve_shard_reject_total`: admission votes denied per shard.
    pub serve_shard_reject: PerLane<Counter>,
    /// `serve_shard_rollback_total`: aborted multi-hop batches that
    /// rolled reservations back, per shard.
    pub serve_shard_rollback: PerLane<Counter>,
    /// `serve_queue_depth`: dispatched-but-unfinalized operations
    /// observed by the service coordinator at each dispatch.
    pub serve_queue_depth: Histogram,
    /// `serve_batch_latency`: logical ticks (finalized operations)
    /// between an operation's dispatch and its finalization.
    pub serve_batch_latency: Histogram,
    /// `serve_crash_total`: injected shard-worker crashes per shard
    /// (each one forced a supervised restart).
    pub serve_crash: PerLane<Counter>,
    /// `serve_journal_replay_total`: write-ahead journal records
    /// replayed during supervised restarts, per shard.
    pub serve_journal_replay: PerLane<Counter>,
    /// `serve_timeout_total`: deterministic coordinator timeouts fired
    /// (= protocol retries sent), per shard.
    pub serve_timeout: PerLane<Counter>,
    /// `serve_shed_total`: load-shedding ladder actions, indexed by
    /// rung (0 = lowest-SL shed, 1 = degraded install).
    pub serve_shed: [Counter; 2],
    /// `timeline_window_total`: telemetry windows closed by a
    /// [`crate::timeline::Timeline`] aggregator.
    pub timeline_windows: Counter,
    /// `slo_eval_total`: SLO clause evaluations performed (one per
    /// clause per timeline window).
    pub slo_evals: Counter,
    /// `slo_breach_total`: SLO clause evaluations that breached.
    pub slo_breaches: Counter,
}

impl Metrics {
    /// An all-zero registry.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// `true` when nothing has been recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    fn hist_sample(name: &'static str, h: &Histogram) -> Sample {
        Sample {
            name,
            dim: Dim::None,
            value: SampleValue::Hist {
                count: h.count(),
                sum: h.sum(),
                p50: h.quantile(0.50),
                p99: h.quantile(0.99),
            },
        }
    }

    /// All non-zero readings, in [`METRIC_NAMES`] order. Zero-valued
    /// lanes/reasons are omitted so reports stay readable; an untouched
    /// registry snapshots to an empty list.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        let counter = |out: &mut Vec<Sample>, name: &'static str, dim: Dim, c: Counter| {
            if c.get() > 0 {
                out.push(Sample {
                    name,
                    dim,
                    value: SampleValue::Count(c.get()),
                });
            }
        };
        counter(&mut out, "alloc_probe_total", Dim::None, self.alloc_probe);
        counter(
            &mut out,
            "alloc_probe_rejected_total",
            Dim::None,
            self.alloc_probe_rejected,
        );
        counter(
            &mut out,
            "alloc_select_fail_total",
            Dim::None,
            self.alloc_select_fail,
        );
        if self.alloc_probe_depth.count() > 0 {
            out.push(Self::hist_sample(
                "alloc_probe_depth",
                &self.alloc_probe_depth,
            ));
        }
        for (i, c) in self.arb_grant.0.iter().enumerate() {
            counter(&mut out, "arb_grant_total", Dim::Vl(i as u8), *c);
        }
        for (i, c) in self.arb_bytes.0.iter().enumerate() {
            counter(&mut out, "arb_bytes_total", Dim::Vl(i as u8), *c);
        }
        counter(
            &mut out,
            "arb_high_bytes_total",
            Dim::None,
            self.arb_high_bytes,
        );
        counter(
            &mut out,
            "arb_low_bytes_total",
            Dim::None,
            self.arb_low_bytes,
        );
        counter(
            &mut out,
            "arb_vl15_bytes_total",
            Dim::None,
            self.arb_vl15_bytes,
        );
        for (i, c) in self.arb_weight_exhausted.0.iter().enumerate() {
            counter(&mut out, "arb_weight_exhausted_total", Dim::Vl(i as u8), *c);
        }
        for (i, c) in self.arb_hol_stall.0.iter().enumerate() {
            counter(&mut out, "arb_hol_stall_total", Dim::Vl(i as u8), *c);
        }
        if self.arb_queue_depth.count() > 0 {
            out.push(Self::hist_sample("arb_queue_depth", &self.arb_queue_depth));
        }
        counter(&mut out, "sim_events_total", Dim::None, self.sim_events);
        if self.sim_event_queue_depth.count() > 0 {
            out.push(Self::hist_sample(
                "sim_event_queue_depth",
                &self.sim_event_queue_depth,
            ));
        }
        counter(
            &mut out,
            "schedule_compile_total",
            Dim::None,
            self.schedule_compiles,
        );
        counter(
            &mut out,
            "schedule_invalidate_total",
            Dim::None,
            self.schedule_invalidations,
        );
        for (i, c) in self.cac_admit.0.iter().enumerate() {
            counter(&mut out, "cac_admit_total", Dim::Sl(i as u8), *c);
        }
        for (i, c) in self.cac_reject.iter().enumerate() {
            counter(
                &mut out,
                "cac_reject_total",
                Dim::Reason(REJECT_REASONS[i]),
                *c,
            );
        }
        counter(&mut out, "cac_release_total", Dim::None, self.cac_release);
        counter(&mut out, "harness_runs_total", Dim::None, self.harness_runs);
        if self.harness_threads.get() > 0 {
            out.push(Sample {
                name: "harness_threads",
                dim: Dim::None,
                value: SampleValue::Count(self.harness_threads.get().max(0) as u64),
            });
        }
        let lane_gauge = |out: &mut Vec<Sample>, name: &'static str, g: &PerLane<Gauge>| {
            for (i, v) in g.0.iter().enumerate() {
                if v.get() > 0 {
                    out.push(Sample {
                        name,
                        dim: Dim::Vl(i as u8),
                        value: SampleValue::Count(v.get().max(0) as u64),
                    });
                }
            }
        };
        lane_gauge(&mut out, "audit_gap_max", &self.audit_gap_max);
        lane_gauge(&mut out, "audit_bound_cycles", &self.audit_bound_cycles);
        for (i, c) in self.audit_violations.0.iter().enumerate() {
            counter(&mut out, "audit_violations_total", Dim::Vl(i as u8), *c);
        }
        counter(
            &mut out,
            "fault_injected_total",
            Dim::None,
            self.fault_injected,
        );
        for (i, c) in self.fault_blocked.0.iter().enumerate() {
            counter(&mut out, "fault_blocked_total", Dim::Vl(i as u8), *c);
        }
        counter(
            &mut out,
            "recovery_repairs_total",
            Dim::None,
            self.recovery_repairs,
        );
        counter(
            &mut out,
            "recovery_evicted_total",
            Dim::None,
            self.recovery_evicted,
        );
        counter(
            &mut out,
            "recovery_reinstalls_total",
            Dim::None,
            self.recovery_reinstalls,
        );
        counter(
            &mut out,
            "recovery_retries_total",
            Dim::None,
            self.recovery_retries,
        );
        counter(
            &mut out,
            "recovery_degraded_total",
            Dim::None,
            self.recovery_degraded,
        );
        if self.recovery_backoff_cycles.count() > 0 {
            out.push(Self::hist_sample(
                "recovery_backoff_cycles",
                &self.recovery_backoff_cycles,
            ));
        }
        counter(&mut out, "span_records_total", Dim::None, self.span_records);
        counter(&mut out, "span_dropped_total", Dim::None, self.span_dropped);
        for (i, c) in self.serve_shard_admit.0.iter().enumerate() {
            counter(&mut out, "serve_shard_admit_total", Dim::Shard(i as u8), *c);
        }
        for (i, c) in self.serve_shard_reject.0.iter().enumerate() {
            counter(
                &mut out,
                "serve_shard_reject_total",
                Dim::Shard(i as u8),
                *c,
            );
        }
        for (i, c) in self.serve_shard_rollback.0.iter().enumerate() {
            counter(
                &mut out,
                "serve_shard_rollback_total",
                Dim::Shard(i as u8),
                *c,
            );
        }
        if self.serve_queue_depth.count() > 0 {
            out.push(Self::hist_sample(
                "serve_queue_depth",
                &self.serve_queue_depth,
            ));
        }
        if self.serve_batch_latency.count() > 0 {
            out.push(Self::hist_sample(
                "serve_batch_latency",
                &self.serve_batch_latency,
            ));
        }
        for (i, c) in self.serve_crash.0.iter().enumerate() {
            counter(&mut out, "serve_crash_total", Dim::Shard(i as u8), *c);
        }
        for (i, c) in self.serve_journal_replay.0.iter().enumerate() {
            counter(
                &mut out,
                "serve_journal_replay_total",
                Dim::Shard(i as u8),
                *c,
            );
        }
        for (i, c) in self.serve_timeout.0.iter().enumerate() {
            counter(&mut out, "serve_timeout_total", Dim::Shard(i as u8), *c);
        }
        for (i, c) in self.serve_shed.iter().enumerate() {
            counter(&mut out, "serve_shed_total", Dim::Rung(i as u8), *c);
        }
        counter(
            &mut out,
            "timeline_window_total",
            Dim::None,
            self.timeline_windows,
        );
        counter(&mut out, "slo_eval_total", Dim::None, self.slo_evals);
        counter(&mut out, "slo_breach_total", Dim::None, self.slo_breaches);
        out
    }

    /// Folds `other` into `self`.
    ///
    /// Counters and histograms merge by (saturating) sum, gauges by
    /// maximum — every combination is commutative and associative, so
    /// merging a set of per-worker registries produces the same result
    /// in **any** order. This is what makes the parallel experiment
    /// harness deterministic: however runs were sharded over threads,
    /// the merged registry is identical.
    pub fn merge(&mut self, other: &Metrics) {
        self.alloc_probe.merge(other.alloc_probe);
        self.alloc_probe_rejected.merge(other.alloc_probe_rejected);
        self.alloc_select_fail.merge(other.alloc_select_fail);
        self.alloc_probe_depth.merge(&other.alloc_probe_depth);
        for (a, b) in self.arb_grant.0.iter_mut().zip(other.arb_grant.0.iter()) {
            a.merge(*b);
        }
        for (a, b) in self.arb_bytes.0.iter_mut().zip(other.arb_bytes.0.iter()) {
            a.merge(*b);
        }
        self.arb_high_bytes.merge(other.arb_high_bytes);
        self.arb_low_bytes.merge(other.arb_low_bytes);
        self.arb_vl15_bytes.merge(other.arb_vl15_bytes);
        for (a, b) in self
            .arb_weight_exhausted
            .0
            .iter_mut()
            .zip(other.arb_weight_exhausted.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .arb_hol_stall
            .0
            .iter_mut()
            .zip(other.arb_hol_stall.0.iter())
        {
            a.merge(*b);
        }
        self.arb_queue_depth.merge(&other.arb_queue_depth);
        self.sim_events.merge(other.sim_events);
        self.sim_event_queue_depth
            .merge(&other.sim_event_queue_depth);
        self.schedule_compiles.merge(other.schedule_compiles);
        self.schedule_invalidations
            .merge(other.schedule_invalidations);
        for (a, b) in self.cac_admit.0.iter_mut().zip(other.cac_admit.0.iter()) {
            a.merge(*b);
        }
        for (a, b) in self.cac_reject.iter_mut().zip(other.cac_reject.iter()) {
            a.merge(*b);
        }
        self.cac_release.merge(other.cac_release);
        self.harness_runs.merge(other.harness_runs);
        self.harness_threads.merge(other.harness_threads);
        for (a, b) in self
            .audit_gap_max
            .0
            .iter_mut()
            .zip(other.audit_gap_max.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .audit_bound_cycles
            .0
            .iter_mut()
            .zip(other.audit_bound_cycles.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .audit_violations
            .0
            .iter_mut()
            .zip(other.audit_violations.0.iter())
        {
            a.merge(*b);
        }
        self.fault_injected.merge(other.fault_injected);
        for (a, b) in self
            .fault_blocked
            .0
            .iter_mut()
            .zip(other.fault_blocked.0.iter())
        {
            a.merge(*b);
        }
        self.recovery_repairs.merge(other.recovery_repairs);
        self.recovery_evicted.merge(other.recovery_evicted);
        self.recovery_reinstalls.merge(other.recovery_reinstalls);
        self.recovery_retries.merge(other.recovery_retries);
        self.recovery_degraded.merge(other.recovery_degraded);
        self.recovery_backoff_cycles
            .merge(&other.recovery_backoff_cycles);
        self.span_records.merge(other.span_records);
        self.span_dropped.merge(other.span_dropped);
        for (a, b) in self
            .serve_shard_admit
            .0
            .iter_mut()
            .zip(other.serve_shard_admit.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .serve_shard_reject
            .0
            .iter_mut()
            .zip(other.serve_shard_reject.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .serve_shard_rollback
            .0
            .iter_mut()
            .zip(other.serve_shard_rollback.0.iter())
        {
            a.merge(*b);
        }
        self.serve_queue_depth.merge(&other.serve_queue_depth);
        self.serve_batch_latency.merge(&other.serve_batch_latency);
        for (a, b) in self
            .serve_crash
            .0
            .iter_mut()
            .zip(other.serve_crash.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .serve_journal_replay
            .0
            .iter_mut()
            .zip(other.serve_journal_replay.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self
            .serve_timeout
            .0
            .iter_mut()
            .zip(other.serve_timeout.0.iter())
        {
            a.merge(*b);
        }
        for (a, b) in self.serve_shed.iter_mut().zip(other.serve_shed.iter()) {
            a.merge(*b);
        }
        self.timeline_windows.merge(other.timeline_windows);
        self.slo_evals.merge(other.slo_evals);
        self.slo_breaches.merge(other.slo_breaches);
    }

    /// The per-window delta `self − earlier`, where `earlier` is a
    /// previous cumulative snapshot of the **same** registry.
    ///
    /// Counters and histograms subtract field-wise (saturating, so a
    /// mismatched pair degrades to zero instead of wrapping); gauges
    /// are level readings and keep their current value. Applied at
    /// fixed tick boundaries this turns a cumulative registry into
    /// per-window rates — the [`crate::timeline::Timeline`] encoding.
    #[must_use]
    pub fn delta_from(&self, earlier: &Metrics) -> Metrics {
        let mut out = self.clone();
        out.subtract(earlier);
        out
    }

    /// In-place counterpart of [`Metrics::delta_from`]: subtracts the
    /// earlier cumulative reading field-by-field (mirror of
    /// [`Metrics::merge`]).
    fn subtract(&mut self, earlier: &Metrics) {
        fn sub_c(a: &mut Counter, b: Counter) {
            *a = Counter::from_get(a.get().saturating_sub(b.get()));
        }
        fn sub_h(a: &mut Histogram, b: &Histogram) {
            a.subtract(b);
        }
        sub_c(&mut self.alloc_probe, earlier.alloc_probe);
        sub_c(&mut self.alloc_probe_rejected, earlier.alloc_probe_rejected);
        sub_c(&mut self.alloc_select_fail, earlier.alloc_select_fail);
        sub_h(&mut self.alloc_probe_depth, &earlier.alloc_probe_depth);
        for (a, b) in self.arb_grant.0.iter_mut().zip(earlier.arb_grant.0.iter()) {
            sub_c(a, *b);
        }
        for (a, b) in self.arb_bytes.0.iter_mut().zip(earlier.arb_bytes.0.iter()) {
            sub_c(a, *b);
        }
        sub_c(&mut self.arb_high_bytes, earlier.arb_high_bytes);
        sub_c(&mut self.arb_low_bytes, earlier.arb_low_bytes);
        sub_c(&mut self.arb_vl15_bytes, earlier.arb_vl15_bytes);
        for (a, b) in self
            .arb_weight_exhausted
            .0
            .iter_mut()
            .zip(earlier.arb_weight_exhausted.0.iter())
        {
            sub_c(a, *b);
        }
        for (a, b) in self
            .arb_hol_stall
            .0
            .iter_mut()
            .zip(earlier.arb_hol_stall.0.iter())
        {
            sub_c(a, *b);
        }
        sub_h(&mut self.arb_queue_depth, &earlier.arb_queue_depth);
        sub_c(&mut self.sim_events, earlier.sim_events);
        sub_h(
            &mut self.sim_event_queue_depth,
            &earlier.sim_event_queue_depth,
        );
        sub_c(&mut self.schedule_compiles, earlier.schedule_compiles);
        sub_c(
            &mut self.schedule_invalidations,
            earlier.schedule_invalidations,
        );
        for (a, b) in self.cac_admit.0.iter_mut().zip(earlier.cac_admit.0.iter()) {
            sub_c(a, *b);
        }
        for (a, b) in self.cac_reject.iter_mut().zip(earlier.cac_reject.iter()) {
            sub_c(a, *b);
        }
        sub_c(&mut self.cac_release, earlier.cac_release);
        sub_c(&mut self.harness_runs, earlier.harness_runs);
        // Gauges (harness_threads, audit_gap_max, audit_bound_cycles)
        // are level readings: the window keeps the current level.
        for (a, b) in self
            .audit_violations
            .0
            .iter_mut()
            .zip(earlier.audit_violations.0.iter())
        {
            sub_c(a, *b);
        }
        sub_c(&mut self.fault_injected, earlier.fault_injected);
        for (a, b) in self
            .fault_blocked
            .0
            .iter_mut()
            .zip(earlier.fault_blocked.0.iter())
        {
            sub_c(a, *b);
        }
        sub_c(&mut self.recovery_repairs, earlier.recovery_repairs);
        sub_c(&mut self.recovery_evicted, earlier.recovery_evicted);
        sub_c(&mut self.recovery_reinstalls, earlier.recovery_reinstalls);
        sub_c(&mut self.recovery_retries, earlier.recovery_retries);
        sub_c(&mut self.recovery_degraded, earlier.recovery_degraded);
        sub_h(
            &mut self.recovery_backoff_cycles,
            &earlier.recovery_backoff_cycles,
        );
        sub_c(&mut self.span_records, earlier.span_records);
        sub_c(&mut self.span_dropped, earlier.span_dropped);
        for (a, b) in self
            .serve_shard_admit
            .0
            .iter_mut()
            .zip(earlier.serve_shard_admit.0.iter())
        {
            sub_c(a, *b);
        }
        for (a, b) in self
            .serve_shard_reject
            .0
            .iter_mut()
            .zip(earlier.serve_shard_reject.0.iter())
        {
            sub_c(a, *b);
        }
        for (a, b) in self
            .serve_shard_rollback
            .0
            .iter_mut()
            .zip(earlier.serve_shard_rollback.0.iter())
        {
            sub_c(a, *b);
        }
        sub_h(&mut self.serve_queue_depth, &earlier.serve_queue_depth);
        sub_h(&mut self.serve_batch_latency, &earlier.serve_batch_latency);
        for (a, b) in self
            .serve_crash
            .0
            .iter_mut()
            .zip(earlier.serve_crash.0.iter())
        {
            sub_c(a, *b);
        }
        for (a, b) in self
            .serve_journal_replay
            .0
            .iter_mut()
            .zip(earlier.serve_journal_replay.0.iter())
        {
            sub_c(a, *b);
        }
        for (a, b) in self
            .serve_timeout
            .0
            .iter_mut()
            .zip(earlier.serve_timeout.0.iter())
        {
            sub_c(a, *b);
        }
        for (a, b) in self.serve_shed.iter_mut().zip(earlier.serve_shed.iter()) {
            sub_c(a, *b);
        }
        sub_c(&mut self.timeline_windows, earlier.timeline_windows);
        sub_c(&mut self.slo_evals, earlier.slo_evals);
        sub_c(&mut self.slo_breaches, earlier.slo_breaches);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.incr();
        assert_eq!(c.get(), u64::MAX);
        c.incr();
        c.add(12345);
        assert_eq!(c.get(), u64::MAX, "overflow must saturate");
    }

    #[test]
    fn gauge_moves_both_ways_and_saturates() {
        let mut g = Gauge::default();
        g.add(5);
        g.add(-7);
        assert_eq!(g.get(), -2);
        g.set(i64::MAX);
        g.add(1);
        assert_eq!(g.get(), i64::MAX);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 is exactly the value 0.
        assert_eq!(Histogram::bucket_index(0), 0);
        // Bucket i holds [2^(i-1), 2^i).
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(65535), 16);
        // Everything >= 65536 lands in the overflow bucket.
        assert_eq!(Histogram::bucket_index(65536), 17);
        assert_eq!(Histogram::bucket_index(u64::MAX), 17);
        // Bounds agree with the index mapping at every edge.
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "upper bound of {i}");
        }
    }

    #[test]
    fn histogram_observe_and_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram quantile is 0");
        for v in [1u64, 1, 2, 2, 2, 2, 16, 64] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 90);
        assert_eq!(h.buckets()[1], 2); // the two 1s
        assert_eq!(h.buckets()[2], 4); // the four 2s
                                       // p50 falls in the [2,3] bucket, p99 in the [64,127] bucket.
        assert_eq!(h.quantile(0.50), 3);
        assert_eq!(h.quantile(0.99), 127);
        assert!((h.mean() - 11.25).abs() < 1e-12);
    }

    #[test]
    fn per_lane_masks_out_of_range_indices() {
        let mut p: PerLane<Counter> = PerLane::default();
        p.lane(0x17).incr(); // 0x17 & 0x0F == 7
        assert_eq!(p.0[7].get(), 1);
    }

    #[test]
    fn empty_registry_snapshots_empty() {
        let m = Metrics::new();
        assert!(m.is_empty());
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn snapshot_names_are_all_in_the_contract_list() {
        let mut m = Metrics::new();
        m.alloc_probe.add(3);
        m.alloc_probe_rejected.add(1);
        m.alloc_select_fail.incr();
        m.alloc_probe_depth.observe(2);
        m.arb_grant.lane(1).incr();
        m.arb_bytes.lane(1).add(256);
        m.arb_high_bytes.add(256);
        m.arb_low_bytes.add(64);
        m.arb_vl15_bytes.add(64);
        m.arb_weight_exhausted.lane(1).incr();
        m.arb_hol_stall.lane(2).incr();
        m.arb_queue_depth.observe(4);
        m.sim_events.incr();
        m.sim_event_queue_depth.observe(8);
        m.schedule_compiles.incr();
        m.schedule_invalidations.incr();
        m.cac_admit.lane(3).incr();
        m.cac_reject[0].incr();
        m.cac_release.incr();
        m.harness_runs.incr();
        m.harness_threads.set(4);
        m.audit_gap_max.lane(1).set(400);
        m.audit_bound_cycles.lane(1).set(1000);
        m.audit_violations.lane(1).incr();
        m.fault_injected.incr();
        m.fault_blocked.lane(2).incr();
        m.recovery_repairs.incr();
        m.recovery_evicted.add(3);
        m.recovery_reinstalls.add(2);
        m.recovery_retries.incr();
        m.recovery_degraded.incr();
        m.recovery_backoff_cycles.observe(128);
        m.span_records.add(2);
        m.span_dropped.incr();
        m.serve_shard_admit.lane(0).incr();
        m.serve_shard_reject.lane(1).incr();
        m.serve_shard_rollback.lane(0).incr();
        m.serve_queue_depth.observe(2);
        m.serve_batch_latency.observe(1);
        m.serve_crash.lane(0).incr();
        m.serve_journal_replay.lane(0).add(5);
        m.serve_timeout.lane(1).incr();
        m.serve_shed[0].incr();
        m.serve_shed[1].incr();
        m.timeline_windows.incr();
        m.slo_evals.add(2);
        m.slo_breaches.incr();
        let snap = m.snapshot();
        assert!(!snap.is_empty());
        for s in &snap {
            assert!(
                METRIC_NAMES.contains(&s.name),
                "{} missing from METRIC_NAMES",
                s.name
            );
        }
        // Every contract name shows up when every metric is touched.
        for name in METRIC_NAMES {
            assert!(
                snap.iter().any(|s| s.name == *name),
                "{name} never snapshotted"
            );
        }
    }

    #[test]
    fn histogram_merge_is_exact() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut whole = Histogram::default();
        for v in [0u64, 1, 2, 5, 9] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [3u64, 70_000, 4] {
            b.observe(v);
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.buckets(), whole.buckets());
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        // Empty: every quantile is 0.
        let empty = Histogram::default();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.quantile(q), 0, "empty at q={q}");
        }
        // Single bucket: every quantile is that bucket's upper bound.
        let mut single = Histogram::default();
        for _ in 0..5 {
            single.observe(3); // bucket [2, 3]
        }
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile(q), 3, "single bucket at q={q}");
        }
        // All-overflow: every quantile is the overflow bound (u64::MAX).
        let mut over = Histogram::default();
        over.observe(65536);
        over.observe(u64::MAX);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(over.quantile(q), u64::MAX, "overflow at q={q}");
        }
        // Out-of-range q clamps instead of panicking.
        assert_eq!(single.quantile(-1.0), 3);
        assert_eq!(single.quantile(7.5), 3);
    }

    #[test]
    fn histogram_merge_preserves_count_and_sum_exactly() {
        // Seeded property check (the workspace carries no proptest):
        // for many random partitions of a random observation stream,
        // merge(a, b) must equal observing the whole stream — count,
        // sum and every bucket, exactly.
        let mut state = 0x9E37_79B9_97F4_A7C1u64;
        let mut next = move || {
            // SplitMix64 step — deterministic, dependency-free.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for case in 0..64 {
            let len = 1 + (next() % 200) as usize;
            let values: Vec<u64> = (0..len)
                .map(|_| {
                    // Mix small values, bucket edges and overflow.
                    match next() % 4 {
                        0 => next() % 8,
                        1 => 1 << (next() % 17),
                        2 => next() % 70_000,
                        _ => next(),
                    }
                })
                .collect();
            let split = (next() % (len as u64 + 1)) as usize;
            let mut a = Histogram::default();
            let mut b = Histogram::default();
            let mut whole = Histogram::default();
            for (i, &v) in values.iter().enumerate() {
                if i < split {
                    a.observe(v);
                } else {
                    b.observe(v);
                }
                whole.observe(v);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count(), "count diverged in case {case}");
            assert_eq!(a.sum(), whole.sum(), "sum diverged in case {case}");
            assert_eq!(
                a.buckets(),
                whole.buckets(),
                "buckets diverged in case {case}"
            );
        }
    }

    #[test]
    fn delta_from_recovers_the_window_increment() {
        let mut earlier = Metrics::new();
        earlier.alloc_probe.add(10);
        earlier.arb_bytes.lane(2).add(512);
        earlier.arb_queue_depth.observe(4);
        earlier.harness_threads.set(2);

        let mut later = earlier.clone();
        later.alloc_probe.add(5);
        later.arb_bytes.lane(2).add(256);
        later.arb_bytes.lane(3).add(64);
        later.arb_queue_depth.observe(9);
        later.cac_release.incr();
        later.timeline_windows.incr();

        let delta = later.delta_from(&earlier);
        assert_eq!(delta.alloc_probe.get(), 5);
        assert_eq!(delta.arb_bytes.0[2].get(), 256);
        assert_eq!(delta.arb_bytes.0[3].get(), 64);
        assert_eq!(delta.arb_queue_depth.count(), 1);
        assert_eq!(delta.arb_queue_depth.sum(), 9);
        assert_eq!(delta.cac_release.get(), 1);
        assert_eq!(delta.timeline_windows.get(), 1);
        // Gauges are level readings: the window keeps the current level.
        assert_eq!(delta.harness_threads.get(), 2);
        // Delta of a snapshot against itself is empty (gauges aside).
        let zero = later.delta_from(&later);
        assert_eq!(zero.alloc_probe.get(), 0);
        assert_eq!(zero.arb_queue_depth.count(), 0);
        assert_eq!(zero.cac_release.get(), 0);
    }

    #[test]
    fn metrics_merge_is_order_independent() {
        let mut parts: Vec<Metrics> = Vec::new();
        for i in 0..3u64 {
            let mut m = Metrics::new();
            m.alloc_probe.add(i + 1);
            m.arb_grant.lane(i as u8).add(10 * (i + 1));
            m.arb_bytes.lane(i as u8).add(256 * (i + 1));
            m.arb_queue_depth.observe(i);
            m.sim_events.add(100 * (i + 1));
            m.sim_event_queue_depth.observe(2 * i);
            m.harness_runs.incr();
            m.harness_threads.set(i as i64 + 1);
            parts.push(m);
        }
        let mut fwd = Metrics::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Metrics::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        let render = |m: &Metrics| format!("{:?}", m.snapshot());
        assert_eq!(render(&fwd), render(&rev));
        assert_eq!(fwd.alloc_probe.get(), 6);
        assert_eq!(fwd.sim_events.get(), 600);
        assert_eq!(fwd.harness_runs.get(), 3);
        // Gauges merge by max, the only order-independent choice.
        assert_eq!(fwd.harness_threads.get(), 3);
        assert_eq!(fwd.arb_queue_depth.count(), 3);
    }
}
