//! Bounded ring-buffer event tracer with a compact binary record
//! format.
//!
//! Each record is exactly [`RECORD_BYTES`] bytes, little-endian:
//!
//! ```text
//! offset  size  field
//! 0       8     timestamp (simulator cycles, u64)
//! 8       1     kind      (see the `KIND_*` constants)
//! 9       1     lane      (VL or SL; 0 when unused)
//! 10      2     aux       (kind-specific: served-by / reject code / depth)
//! 12      4     value     (kind-specific: bytes granted; 0 when unused)
//! ```
//!
//! The ring holds a fixed number of records and overwrites the oldest
//! when full, counting how many were dropped so reports can say so.

use crate::recorder::{RejectKind, ServedKind};

/// Size in bytes of one encoded trace record.
pub const RECORD_BYTES: usize = 16;

/// Record kind: an arbitration grant.
pub const KIND_GRANT: u8 = 1;
/// Record kind: a head-of-line stall observation.
pub const KIND_HOL_STALL: u8 = 2;
/// Record kind: a table entry's weight credit drained.
pub const KIND_WEIGHT_EXHAUSTED: u8 = 3;
/// Record kind: a service-guarantee audit violation (an inter-grant
/// gap exceeded its lane's `d`·slot budget). Fills the historical gap
/// between `KIND_WEIGHT_EXHAUSTED` and `KIND_ADMIT`.
pub const KIND_AUDIT_VIOLATION: u8 = 4;
/// Record kind: a connection admission.
pub const KIND_ADMIT: u8 = 5;
/// Record kind: a connection rejection.
pub const KIND_REJECT: u8 = 6;
/// Record kind: a connection teardown.
pub const KIND_RELEASE: u8 = 7;
/// Record kind: an allocator select (probe-sequence walk) finished.
pub const KIND_ALLOC_SELECT: u8 = 8;
/// Record kind: a fault-injection or recovery action. The `lane` byte
/// carries a sub-kind from [`fault_code`], `aux` the affected port and
/// `value` a sub-kind-specific detail (mask, rate shift, eviction
/// count, backoff cycles).
pub const KIND_FAULT: u8 = 9;
/// Record kind: one causal stage of a sharded admission-service
/// request (dispatch → vote → commit/abort → finalize). The `lane`
/// byte carries a [`request_stage`] code, `aux` packs the shard (high
/// byte) and path index (low byte; [`request_stage::NO_PATH`] when the
/// stage has no hop), and `value` is the request id.
pub const KIND_REQUEST: u8 = 10;
/// Record kind: a control-plane fault-tolerance action of the sharded
/// admission service (crash, journal replay, timeout, shed). The
/// `lane` byte carries the affected shard, `aux` a sub-kind from
/// [`serve_code`] and `value` a sub-kind-specific detail (records
/// replayed, backoff cycles, ladder rung).
pub const KIND_SERVE: u8 = 11;

/// Stage codes carried in the `lane` byte of a
/// [`TraceEvent::Request`] record. The numeric order **is** the causal
/// order within one request, so sorting records by `(rid, stage, path,
/// shard)` reconstructs the span tree.
pub mod request_stage {
    /// The coordinator dispatched the operation (root of the span).
    pub const DISPATCH: u8 = 0;
    /// A shard voted on its hops of the admission.
    pub const VOTE: u8 = 1;
    /// A shard committed one hop reservation.
    pub const COMMIT: u8 = 2;
    /// A shard replayed/rolled back its hops of a failed admission.
    pub const ABORT: u8 = 3;
    /// The coordinator finalized the operation (close of the span).
    pub const FINALIZE: u8 = 4;
    /// Path-index placeholder for stages that concern no single hop.
    pub const NO_PATH: u8 = 0xFF;

    /// Short label for reports; `"request"` for unknown codes.
    #[must_use]
    pub fn label(code: u8) -> &'static str {
        match code {
            DISPATCH => "dispatch",
            VOTE => "vote",
            COMMIT => "commit",
            ABORT => "abort",
            FINALIZE => "finalize",
            _ => "request",
        }
    }
}

/// Sub-kind codes carried in the `aux` field of a
/// [`TraceEvent::Serve`] record.
pub mod serve_code {
    /// An injected shard-worker crash (volatile state destroyed).
    pub const CRASH: u8 = 0;
    /// A supervised restart replayed the write-ahead journal; `value`
    /// is the number of records replayed.
    pub const JOURNAL_REPLAY: u8 = 1;
    /// A coordinator timeout expired; `value` is the deterministic
    /// backoff delay in cycles.
    pub const TIMEOUT: u8 = 2;
    /// The load-shedding ladder acted; `value` is the rung (0 = shed,
    /// 1 = degraded install).
    pub const SHED: u8 = 3;

    /// Short label for reports; `"serve"` for unknown codes.
    #[must_use]
    pub fn label(code: u8) -> &'static str {
        match code {
            CRASH => "crash",
            JOURNAL_REPLAY => "journal-replay",
            TIMEOUT => "timeout",
            SHED => "shed",
            _ => "serve",
        }
    }
}

/// Sub-kind codes carried in the `lane` byte of a
/// [`TraceEvent::Fault`] record.
pub mod fault_code {
    /// Link rate degraded; `value` is the slow-down shift (0 restores
    /// full rate).
    pub const LINK_DEGRADE: u8 = 0;
    /// Link taken down (no new transfers start).
    pub const LINK_DOWN: u8 = 1;
    /// Link restored.
    pub const LINK_UP: u8 = 2;
    /// VL blackout mask installed; `value` is the 16-bit VL mask.
    pub const VL_BLACKOUT: u8 = 3;
    /// Credit-stall mask installed; `value` is the 16-bit VL mask.
    pub const CREDIT_STALL: u8 = 4;
    /// Installed arbitration table corrupted; `value` is the
    /// corruption seed's low 32 bits.
    pub const TABLE_CORRUPT: u8 = 5;
    /// Recovery repaired a damaged table; `value` is the number of
    /// evicted sequences.
    pub const RECOVERY_REPAIR: u8 = 8;
    /// Recovery re-installed arbitration tables on the fabric.
    pub const RECOVERY_REINSTALL: u8 = 9;
    /// Recovery retried an admission; `value` is the backoff delay in
    /// cycles.
    pub const RECOVERY_RETRY: u8 = 10;
    /// Recovery escalated a re-install down the distance ladder.
    pub const RECOVERY_DEGRADED: u8 = 11;
    /// A control-plane fault calendar crashed an admission-service
    /// shard worker; `value` is the targeted trace-op index.
    pub const SERVE_CRASH: u8 = 12;
    /// A control-plane fault calendar lost/delayed a coordinator→shard
    /// vote message; `value` is the targeted trace-op index.
    pub const SERVE_VOTE_LOSS: u8 = 13;
    /// A control-plane fault calendar lost a shard→coordinator reply;
    /// `value` is the targeted trace-op index.
    pub const SERVE_REPLY_LOSS: u8 = 14;

    /// Short label for reports; `"fault"` for unknown codes.
    #[must_use]
    pub fn label(code: u8) -> &'static str {
        match code {
            LINK_DEGRADE => "link-degrade",
            LINK_DOWN => "link-down",
            LINK_UP => "link-up",
            VL_BLACKOUT => "vl-blackout",
            CREDIT_STALL => "credit-stall",
            TABLE_CORRUPT => "table-corrupt",
            RECOVERY_REPAIR => "recovery-repair",
            RECOVERY_REINSTALL => "recovery-reinstall",
            RECOVERY_RETRY => "recovery-retry",
            RECOVERY_DEGRADED => "recovery-degraded",
            SERVE_CRASH => "serve-crash",
            SERVE_VOTE_LOSS => "serve-vote-loss",
            SERVE_REPLY_LOSS => "serve-reply-loss",
            _ => "fault",
        }
    }
}

/// A decoded trace event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    /// The arbiter granted `bytes` to `vl` from the given table.
    Grant {
        /// Virtual lane granted.
        vl: u8,
        /// Packet size in bytes (clamped to `u32::MAX` on encode).
        bytes: u64,
        /// Which table served the grant.
        served: ServedKind,
    },
    /// A head packet was blocked on downstream credit.
    HolStall {
        /// Virtual lane of the stalled head packet.
        vl: u8,
    },
    /// A grant drained its table entry's weight credit.
    WeightExhausted {
        /// Virtual lane whose entry was exhausted.
        vl: u8,
    },
    /// An inter-grant gap exceeded the lane's service-guarantee budget.
    AuditViolation {
        /// Virtual lane that missed its guarantee.
        vl: u8,
        /// Observed inter-grant distance in table slots.
        gap_slots: u32,
        /// The lane's budget (`d`) in table slots.
        budget_slots: u16,
    },
    /// A connection was admitted.
    Admit {
        /// Service level of the admitted connection.
        sl: u8,
    },
    /// A connection was rejected.
    Reject {
        /// Why the connection was rejected.
        reason: RejectKind,
    },
    /// A connection was torn down.
    Release,
    /// An allocator select finished.
    AllocSelect {
        /// Number of E-sets probed.
        depth: u32,
        /// Whether a free sequence was found.
        found: bool,
    },
    /// A fault was injected or a recovery action taken.
    Fault {
        /// Sub-kind (one of the [`fault_code`] constants).
        code: u8,
        /// Affected port (or 0 for table-level recovery actions).
        port: u16,
        /// Sub-kind-specific detail (mask, shift, evictions, cycles).
        detail: u32,
    },
    /// One causal stage of a sharded admission-service request.
    Request {
        /// The request id (trace operation index).
        rid: u32,
        /// Stage code (one of the [`request_stage`] constants).
        stage: u8,
        /// Shard that produced the record (coordinator stages use 0).
        shard: u8,
        /// Path (hop) index the stage concerns, or
        /// [`request_stage::NO_PATH`] when none.
        path: u8,
    },
    /// A control-plane fault-tolerance action of the admission service.
    Serve {
        /// Sub-kind (one of the [`serve_code`] constants).
        code: u8,
        /// Affected shard (0 for coordinator-level actions).
        shard: u8,
        /// Sub-kind-specific detail (records replayed, backoff cycles,
        /// ladder rung).
        detail: u32,
    },
}

impl TraceEvent {
    /// Encodes the event at `now` into the 16-byte wire form.
    #[must_use]
    pub fn encode(&self, now: u64) -> [u8; RECORD_BYTES] {
        let (kind, lane, aux, value): (u8, u8, u16, u32) = match *self {
            TraceEvent::Grant { vl, bytes, served } => {
                let clamped = u32::try_from(bytes).unwrap_or(u32::MAX);
                (KIND_GRANT, vl, served.code(), clamped)
            }
            TraceEvent::HolStall { vl } => (KIND_HOL_STALL, vl, 0, 0),
            TraceEvent::WeightExhausted { vl } => (KIND_WEIGHT_EXHAUSTED, vl, 0, 0),
            TraceEvent::AuditViolation {
                vl,
                gap_slots,
                budget_slots,
            } => (KIND_AUDIT_VIOLATION, vl, budget_slots, gap_slots),
            TraceEvent::Admit { sl } => (KIND_ADMIT, sl, 0, 0),
            TraceEvent::Reject { reason } => (KIND_REJECT, 0, reason.index() as u16, 0),
            TraceEvent::Release => (KIND_RELEASE, 0, 0, 0),
            TraceEvent::AllocSelect { depth, found } => {
                (KIND_ALLOC_SELECT, 0, u16::from(found), depth)
            }
            TraceEvent::Fault { code, port, detail } => (KIND_FAULT, code, port, detail),
            TraceEvent::Request {
                rid,
                stage,
                shard,
                path,
            } => (
                KIND_REQUEST,
                stage,
                (u16::from(shard) << 8) | u16::from(path),
                rid,
            ),
            TraceEvent::Serve {
                code,
                shard,
                detail,
            } => (KIND_SERVE, shard, u16::from(code), detail),
        };
        let mut buf = [0u8; RECORD_BYTES];
        buf[0..8].copy_from_slice(&now.to_le_bytes());
        buf[8] = kind;
        buf[9] = lane;
        buf[10..12].copy_from_slice(&aux.to_le_bytes());
        buf[12..16].copy_from_slice(&value.to_le_bytes());
        buf
    }

    /// Decodes one 16-byte record; `None` for unknown kinds or codes.
    /// Returns the timestamp alongside the event.
    #[must_use]
    pub fn decode(buf: &[u8; RECORD_BYTES]) -> Option<(u64, TraceEvent)> {
        let mut t8 = [0u8; 8];
        t8.copy_from_slice(&buf[0..8]);
        let time = u64::from_le_bytes(t8);
        let kind = buf[8];
        let lane = buf[9];
        let aux = u16::from_le_bytes([buf[10], buf[11]]);
        let value = u32::from_le_bytes([buf[12], buf[13], buf[14], buf[15]]);
        let ev = match kind {
            KIND_GRANT => TraceEvent::Grant {
                vl: lane,
                bytes: u64::from(value),
                served: ServedKind::from_code(aux)?,
            },
            KIND_HOL_STALL => TraceEvent::HolStall { vl: lane },
            KIND_WEIGHT_EXHAUSTED => TraceEvent::WeightExhausted { vl: lane },
            KIND_AUDIT_VIOLATION => TraceEvent::AuditViolation {
                vl: lane,
                gap_slots: value,
                budget_slots: aux,
            },
            KIND_ADMIT => TraceEvent::Admit { sl: lane },
            KIND_REJECT => TraceEvent::Reject {
                reason: RejectKind::from_code(aux)?,
            },
            KIND_RELEASE => TraceEvent::Release,
            KIND_ALLOC_SELECT => TraceEvent::AllocSelect {
                depth: value,
                found: aux != 0,
            },
            KIND_FAULT => TraceEvent::Fault {
                code: lane,
                port: aux,
                detail: value,
            },
            KIND_REQUEST => TraceEvent::Request {
                rid: value,
                stage: lane,
                shard: (aux >> 8) as u8,
                path: (aux & 0xFF) as u8,
            },
            KIND_SERVE => TraceEvent::Serve {
                code: aux as u8,
                shard: lane,
                detail: value,
            },
            _ => return None,
        };
        Some((time, ev))
    }

    /// One-line text rendering (used by `ibaqos trace`).
    #[must_use]
    pub fn render(&self, time: u64) -> String {
        match *self {
            TraceEvent::Grant { vl, bytes, served } => format!(
                "{time:>10}  grant            vl={vl:<2} bytes={bytes:<6} table={}",
                served.label()
            ),
            TraceEvent::HolStall { vl } => {
                format!("{time:>10}  hol-stall        vl={vl}")
            }
            TraceEvent::WeightExhausted { vl } => {
                format!("{time:>10}  weight-exhausted vl={vl}")
            }
            TraceEvent::AuditViolation {
                vl,
                gap_slots,
                budget_slots,
            } => format!(
                "{time:>10}  audit-violation  vl={vl} gap={gap_slots}slots budget={budget_slots}"
            ),
            TraceEvent::Admit { sl } => format!("{time:>10}  cac-admit        sl={sl}"),
            TraceEvent::Reject { reason } => {
                format!("{time:>10}  cac-reject       reason={}", reason.label())
            }
            TraceEvent::Release => format!("{time:>10}  cac-release"),
            TraceEvent::AllocSelect { depth, found } => format!(
                "{time:>10}  alloc-select     depth={depth} result={}",
                if found { "found" } else { "exhausted" }
            ),
            TraceEvent::Fault { code, port, detail } => format!(
                "{time:>10}  fault            kind={} port={port} detail={detail}",
                fault_code::label(code)
            ),
            TraceEvent::Request {
                rid,
                stage,
                shard,
                path,
            } => {
                let at = if path == request_stage::NO_PATH {
                    String::from("-")
                } else {
                    path.to_string()
                };
                format!(
                    "{time:>10}  request          rid={rid} stage={} shard={shard} path={at}",
                    request_stage::label(stage)
                )
            }
            TraceEvent::Serve {
                code,
                shard,
                detail,
            } => format!(
                "{time:>10}  serve            kind={} shard={shard} detail={detail}",
                serve_code::label(code)
            ),
        }
    }
}

/// A bounded ring of encoded trace records. When full, pushing
/// overwrites the oldest record and bumps [`RingTracer::dropped`].
#[derive(Clone, Debug)]
pub struct RingTracer {
    buf: Vec<[u8; RECORD_BYTES]>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl Default for RingTracer {
    fn default() -> Self {
        RingTracer::new(4096)
    }
}

impl RingTracer {
    /// A tracer holding at most `capacity` records (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingTracer {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
        }
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no records have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many records were overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an event, overwriting the oldest record when full.
    pub fn push(&mut self, now: u64, ev: TraceEvent) {
        let rec = ev.encode(now);
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Decoded records in arrival order (oldest first). Records with
    /// unknown kinds are skipped.
    #[must_use]
    pub fn records(&self) -> Vec<(u64, TraceEvent)> {
        let (tail, head) = self.buf.split_at(self.head.min(self.buf.len()));
        head.iter()
            .chain(tail.iter())
            .filter_map(TraceEvent::decode)
            .collect()
    }

    /// The raw encoded bytes in arrival order (oldest first) — the
    /// binary trace format, `len() * RECORD_BYTES` bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let (tail, head) = self.buf.split_at(self.head.min(self.buf.len()));
        head.iter()
            .chain(tail.iter())
            .flat_map(|r| r.iter().copied())
            .collect()
    }

    /// Renders the newest `limit` records as text lines (oldest of the
    /// window first). `limit == 0` means all held records.
    #[must_use]
    pub fn render(&self, limit: usize) -> Vec<String> {
        let records = self.records();
        let start = if limit == 0 {
            0
        } else {
            records.len().saturating_sub(limit)
        };
        records[start..]
            .iter()
            .map(|(t, ev)| ev.render(*t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_every_kind() {
        let events = [
            TraceEvent::Grant {
                vl: 3,
                bytes: 2048,
                served: ServedKind::Low,
            },
            TraceEvent::HolStall { vl: 1 },
            TraceEvent::WeightExhausted { vl: 15 },
            TraceEvent::AuditViolation {
                vl: 2,
                gap_slots: 8,
                budget_slots: 4,
            },
            TraceEvent::Admit { sl: 7 },
            TraceEvent::Reject {
                reason: RejectKind::CapacityExceeded,
            },
            TraceEvent::Release,
            TraceEvent::AllocSelect {
                depth: 9,
                found: true,
            },
            TraceEvent::AllocSelect {
                depth: 64,
                found: false,
            },
            TraceEvent::Fault {
                code: fault_code::LINK_DOWN,
                port: 3,
                detail: 0,
            },
            TraceEvent::Fault {
                code: fault_code::RECOVERY_REPAIR,
                port: 0,
                detail: 5,
            },
            TraceEvent::Request {
                rid: 42,
                stage: request_stage::COMMIT,
                shard: 3,
                path: 1,
            },
            TraceEvent::Request {
                rid: u32::MAX,
                stage: request_stage::ABORT,
                shard: 255,
                path: request_stage::NO_PATH,
            },
            TraceEvent::Serve {
                code: serve_code::JOURNAL_REPLAY,
                shard: 2,
                detail: 17,
            },
            TraceEvent::Serve {
                code: serve_code::SHED,
                shard: 0,
                detail: 1,
            },
        ];
        for (i, ev) in events.iter().enumerate() {
            let t = 1000 + i as u64;
            let buf = ev.encode(t);
            assert_eq!(TraceEvent::decode(&buf), Some((t, *ev)));
        }
        // Every declared KIND_* constant is exercised above: the wire
        // kinds seen on encode must be exactly the declared set, with
        // no numbering gaps left in 1..=11.
        let mut kinds: Vec<u8> = events.iter().map(|ev| ev.encode(0)[8]).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(
            kinds,
            vec![
                KIND_GRANT,
                KIND_HOL_STALL,
                KIND_WEIGHT_EXHAUSTED,
                KIND_AUDIT_VIOLATION,
                KIND_ADMIT,
                KIND_REJECT,
                KIND_RELEASE,
                KIND_ALLOC_SELECT,
                KIND_FAULT,
                KIND_REQUEST,
                KIND_SERVE,
            ]
        );
        assert_eq!(kinds, (1..=11).collect::<Vec<u8>>());
    }

    #[test]
    fn fault_codes_have_distinct_labels() {
        let codes = [
            fault_code::LINK_DEGRADE,
            fault_code::LINK_DOWN,
            fault_code::LINK_UP,
            fault_code::VL_BLACKOUT,
            fault_code::CREDIT_STALL,
            fault_code::TABLE_CORRUPT,
            fault_code::RECOVERY_REPAIR,
            fault_code::RECOVERY_REINSTALL,
            fault_code::RECOVERY_RETRY,
            fault_code::RECOVERY_DEGRADED,
            fault_code::SERVE_CRASH,
            fault_code::SERVE_VOTE_LOSS,
            fault_code::SERVE_REPLY_LOSS,
        ];
        let mut labels: Vec<&str> = codes.iter().map(|&c| fault_code::label(c)).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), codes.len(), "fault-code labels collide");
        assert_eq!(fault_code::label(0xEE), "fault");
    }

    #[test]
    fn grant_bytes_clamp_to_u32() {
        let ev = TraceEvent::Grant {
            vl: 0,
            bytes: u64::MAX,
            served: ServedKind::High,
        };
        let decoded = TraceEvent::decode(&ev.encode(0)).map(|(_, e)| e);
        assert_eq!(
            decoded,
            Some(TraceEvent::Grant {
                vl: 0,
                bytes: u64::from(u32::MAX),
                served: ServedKind::High,
            })
        );
    }

    #[test]
    fn unknown_kind_decodes_to_none() {
        let mut buf = [0u8; RECORD_BYTES];
        buf[8] = 0xEE;
        assert_eq!(TraceEvent::decode(&buf), None);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut t = RingTracer::new(3);
        for i in 0..5u64 {
            t.push(i, TraceEvent::Admit { sl: i as u8 });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let recs = t.records();
        let times: Vec<u64> = recs.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(t.to_bytes().len(), 3 * RECORD_BYTES);
    }

    #[test]
    fn render_limits_to_newest_records() {
        let mut t = RingTracer::new(16);
        for i in 0..6u64 {
            t.push(i, TraceEvent::Release);
        }
        assert_eq!(t.render(0).len(), 6);
        let last_two = t.render(2);
        assert_eq!(last_two.len(), 2);
        assert!(last_two[0].trim_start().starts_with('4'));
        assert!(last_two[1].trim_start().starts_with('5'));
    }

    #[test]
    fn empty_tracer_renders_nothing() {
        let t = RingTracer::new(8);
        assert!(t.is_empty());
        assert!(t.records().is_empty());
        assert!(t.render(10).is_empty());
    }
}
