//! A minimal JSON value type and serializer.
//!
//! The workspace is intentionally dependency-free (offline builds are
//! part of the CI contract), so the `BENCH_*.json` artifacts are
//! produced with this hand-rolled serializer instead of serde. Only
//! what the bench reports need is implemented: objects preserve
//! insertion order, floats are emitted with enough precision to
//! round-trip nanosecond timings, and non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float; NaN and infinities serialize as `null`.
    Float(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an unsigned integer (clamped to `i64::MAX`).
    #[must_use]
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format of the `BENCH_*.json` artifacts.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // {:?} prints the shortest representation that
                    // round-trips, and always includes a decimal point.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-7).pretty(), "-7\n");
        assert_eq!(Json::Float(1.5).pretty(), "1.5\n");
        assert_eq!(Json::uint(u64::MAX), Json::Int(i64::MAX));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "null\n");
        assert_eq!(Json::Float(f64::NEG_INFINITY).pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Array(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Object(vec![]).pretty(), "{}\n");
    }

    #[test]
    fn nested_structure_indents() {
        let j = Json::Object(vec![
            ("name".into(), Json::str("bitrev")),
            ("iters".into(), Json::uint(100)),
            (
                "samples".into(),
                Json::Array(vec![Json::Float(1.25), Json::Int(2)]),
            ),
        ]);
        let expected = "{\n  \"name\": \"bitrev\",\n  \"iters\": 100,\n  \"samples\": [\n    1.25,\n    2\n  ]\n}\n";
        assert_eq!(j.pretty(), expected);
    }

    #[test]
    fn float_precision_roundtrips_nanoseconds() {
        let v = 1234.567891234;
        let s = Json::Float(v).pretty();
        let parsed: f64 = s.trim().parse().unwrap();
        assert_eq!(parsed, v);
    }
}
