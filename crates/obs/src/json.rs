//! A minimal JSON value type and serializer.
//!
//! The workspace is intentionally dependency-free (offline builds are
//! part of the CI contract), so the `BENCH_*.json` artifacts are
//! produced with this hand-rolled serializer instead of serde. Only
//! what the bench reports need is implemented: objects preserve
//! insertion order, floats are emitted with enough precision to
//! round-trip nanosecond timings, and non-finite floats serialize as
//! `null` (JSON has no NaN/Infinity).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float; NaN and infinities serialize as `null`.
    Float(f64),
    /// A string (escaped on serialization).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; keys keep insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience: an unsigned integer (clamped to `i64::MAX`).
    #[must_use]
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// Parses a JSON document (strict: one value, only trailing
    /// whitespace after it). Integers without fraction/exponent become
    /// [`Json::Int`] (falling back to [`Json::Float`] on overflow);
    /// everything else numeric becomes [`Json::Float`]. Used by the
    /// golden tests to structurally validate Perfetto exports without
    /// pulling in serde.
    ///
    /// # Errors
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up `key` when this value is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64`, for `Int` and `Float` alike.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline —
    /// the format of the `BENCH_*.json` artifacts.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // {:?} prints the shortest representation that
                    // round-trips, and always includes a decimal point.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect_literal(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}", pos = *pos));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected `\"` at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .copied()
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our own
                        // output; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = &bytes[*pos..];
                let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                if let Some(c) = s.chars().next() {
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected a number at byte {start}"));
    }
    if !is_float {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_serialize() {
        assert_eq!(Json::Null.pretty(), "null\n");
        assert_eq!(Json::Bool(true).pretty(), "true\n");
        assert_eq!(Json::Int(-7).pretty(), "-7\n");
        assert_eq!(Json::Float(1.5).pretty(), "1.5\n");
        assert_eq!(Json::uint(u64::MAX), Json::Int(i64::MAX));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "null\n");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "null\n");
        assert_eq!(Json::Float(f64::NEG_INFINITY).pretty(), "null\n");
    }

    #[test]
    fn strings_are_escaped() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.pretty(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(Json::Array(vec![]).pretty(), "[]\n");
        assert_eq!(Json::Object(vec![]).pretty(), "{}\n");
    }

    #[test]
    fn nested_structure_indents() {
        let j = Json::Object(vec![
            ("name".into(), Json::str("bitrev")),
            ("iters".into(), Json::uint(100)),
            (
                "samples".into(),
                Json::Array(vec![Json::Float(1.25), Json::Int(2)]),
            ),
        ]);
        let expected = "{\n  \"name\": \"bitrev\",\n  \"iters\": 100,\n  \"samples\": [\n    1.25,\n    2\n  ]\n}\n";
        assert_eq!(j.pretty(), expected);
    }

    #[test]
    fn parse_roundtrips_own_output() {
        let j = Json::Object(vec![
            ("name".into(), Json::str("a\"b\\c\nd")),
            ("n".into(), Json::Int(-42)),
            ("x".into(), Json::Float(1.25)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "arr".into(),
                Json::Array(vec![Json::Int(1), Json::str("two"), Json::Array(vec![])]),
            ),
            ("empty".into(), Json::Object(vec![])),
        ]);
        assert_eq!(Json::parse(&j.pretty()), Ok(j));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nulL").is_err());
    }

    #[test]
    fn parse_handles_numbers_and_escapes() {
        assert_eq!(Json::parse("-17"), Ok(Json::Int(-17)));
        assert_eq!(Json::parse("2.5e3"), Ok(Json::Float(2500.0)));
        assert_eq!(Json::parse("\"\\u0041\\t\\/\""), Ok(Json::str("A\t/")));
        // i64 overflow degrades to float rather than failing.
        assert_eq!(Json::parse("99999999999999999999"), Ok(Json::Float(1e20)));
    }

    #[test]
    fn get_and_as_f64_accessors() {
        let j = Json::parse("{\"ts\": 12, \"x\": 1.5}").unwrap();
        assert_eq!(j.get("ts").and_then(Json::as_f64), Some(12.0));
        assert_eq!(j.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("ts"), None);
        assert_eq!(Json::str("s").as_f64(), None);
    }

    #[test]
    fn float_precision_roundtrips_nanoseconds() {
        let v = 1234.567891234;
        let s = Json::Float(v).pretty();
        let parsed: f64 = s.trim().parse().unwrap();
        assert_eq!(parsed, v);
    }
}
