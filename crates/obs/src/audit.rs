//! Live service-guarantee auditor.
//!
//! The paper's contract is a *runtime* property: a class admitted at
//! distance `d` must see at most `d` table slots — a bounded number of
//! cycles — between consecutive high-priority grants. The
//! [`GuaranteeAuditor`] checks that claim against the actual grant
//! stream: it implements [`Recorder`], so it can sit anywhere an
//! `ObsRecorder` can, and compares every observed inter-grant gap
//! (in cycles *and* in table-slot distance) against the per-VL budget
//! derived from the installed arbitration table.
//!
//! Slot distance is measured by counting slot activations: under the
//! engine's weighted round-robin, each visited table entry ends with
//! exactly one weight-exhausted event when its credit drains, so the
//! number of [`Recorder::arb_weight_exhausted`] calls between two
//! grants of the same VL is the number of table slots the arbiter
//! walked in between.
//!
//! Budgets are optional per lane. With no budget a lane is merely
//! *observed* (gap maxima are tracked, violations are impossible) —
//! that is the mode used when an auditor rides along a full-fabric
//! simulation, where the recorder hooks carry no port identity and a
//! single slot counter would mix ports. Strict per-port auditing is
//! done by `iba-harness`'s audit drive, which replays one port's
//! table through a dedicated engine.

use crate::metrics::Metrics;
use crate::recorder::{Recorder, ServedKind};
use crate::trace::{RingTracer, TraceEvent};

/// The guarantee one virtual lane must honour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LaneBudget {
    /// Maximum admissible inter-grant distance in table slots — the
    /// contracted `d` of the strictest sequence installed for this VL.
    pub d_slots: u64,
    /// Maximum admissible inter-grant gap in cycles (bytes on a 1×
    /// link): `d_slots` worst-case slot activations plus one packet.
    pub bound_cycles: u64,
}

/// Per-lane audit state: budget, observed maxima, violation count.
#[derive(Clone, Copy, Debug, Default)]
pub struct LaneAudit {
    budget: Option<LaneBudget>,
    grants: u64,
    gap_slots_max: u64,
    gap_cycles_max: u64,
    violations: u64,
    last_cycle: Option<u64>,
    last_visit: Option<u64>,
}

impl LaneAudit {
    /// The budget installed for this lane, if any.
    #[must_use]
    pub fn budget(&self) -> Option<LaneBudget> {
        self.budget
    }

    /// High-priority grants observed on this lane.
    #[must_use]
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Largest observed inter-grant distance in table slots.
    #[must_use]
    pub fn gap_slots_max(&self) -> u64 {
        self.gap_slots_max
    }

    /// Largest observed inter-grant gap in cycles.
    #[must_use]
    pub fn gap_cycles_max(&self) -> u64 {
        self.gap_cycles_max
    }

    /// Grants whose gap exceeded the budget (slot or cycle bound).
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// `Some(true)` if the lane held its budget, `Some(false)` if it
    /// violated it, `None` for budget-less (observe-only) lanes.
    #[must_use]
    pub fn passed(&self) -> Option<bool> {
        self.budget.map(|_| self.violations == 0)
    }
}

/// Checks the per-VL inter-grant guarantee live from a grant stream.
///
/// Feed it as the [`Recorder`] of an arbitration drive (or merge it
/// behind another recorder); then read per-lane verdicts, export
/// `audit_*` metrics, or render the pass/fail report.
#[derive(Clone, Debug, Default)]
pub struct GuaranteeAuditor {
    lanes: [LaneAudit; 16],
    now: u64,
    slot_visits: u64,
    tracer: Option<RingTracer>,
}

impl GuaranteeAuditor {
    /// An auditor with no budgets (observe-only until budgets are set).
    #[must_use]
    pub fn new() -> Self {
        GuaranteeAuditor::default()
    }

    /// An auditor that also traces each violation into a bounded ring
    /// of `capacity` records (kind `audit-violation`).
    #[must_use]
    pub fn with_tracer(capacity: usize) -> Self {
        GuaranteeAuditor {
            tracer: Some(RingTracer::new(capacity)),
            ..GuaranteeAuditor::default()
        }
    }

    /// Installs the guarantee for `vl`. Lanes without a budget are
    /// observed but can never violate.
    pub fn set_budget(&mut self, vl: u8, budget: LaneBudget) {
        self.lanes[usize::from(vl & 0x0F)].budget = Some(budget);
    }

    /// The audit state of one lane.
    #[must_use]
    pub fn lane(&self, vl: u8) -> &LaneAudit {
        &self.lanes[usize::from(vl & 0x0F)]
    }

    /// Iterates `(vl, lane)` over lanes that have a budget or saw at
    /// least one grant.
    pub fn active_lanes(&self) -> impl Iterator<Item = (u8, &LaneAudit)> {
        self.lanes
            .iter()
            .enumerate()
            .filter(|(_, l)| l.budget.is_some() || l.grants > 0)
            .map(|(i, l)| (i as u8, l))
    }

    /// Total violations across all lanes.
    #[must_use]
    pub fn violations_total(&self) -> u64 {
        self.lanes.iter().map(|l| l.violations).sum()
    }

    /// Table-slot activations observed so far.
    #[must_use]
    pub fn slot_visits(&self) -> u64 {
        self.slot_visits
    }

    /// The violation trace ring, when tracing was enabled.
    #[must_use]
    pub fn tracer(&self) -> Option<&RingTracer> {
        self.tracer.as_ref()
    }

    /// The lane that came closest to (or furthest past) its slot
    /// budget, as `(vl, lane)` — the worst offender. Budget-less lanes
    /// are ranked by raw gap. `None` before the second grant.
    #[must_use]
    pub fn worst_offender(&self) -> Option<(u8, &LaneAudit)> {
        self.active_lanes()
            .filter(|(_, l)| l.grants > 1)
            .max_by_key(|(_, l)| match l.budget {
                // Scale to a per-mille ratio so lanes with different
                // budgets compare fairly; saturating for safety.
                Some(b) if b.d_slots > 0 => l.gap_slots_max.saturating_mul(1000) / b.d_slots,
                _ => l.gap_slots_max,
            })
    }

    /// Exports `audit_gap_max{vl}` (cycles), `audit_bound_cycles{vl}`
    /// and `audit_violations_total{vl}` into a metrics registry.
    pub fn export_into(&self, metrics: &mut Metrics) {
        for (vl, lane) in self.active_lanes() {
            let gauge = metrics.audit_gap_max.lane(vl);
            let cur = gauge.get();
            let observed = i64::try_from(lane.gap_cycles_max).unwrap_or(i64::MAX);
            gauge.set(cur.max(observed));
            if let Some(b) = lane.budget {
                metrics
                    .audit_bound_cycles
                    .lane(vl)
                    .set(i64::try_from(b.bound_cycles).unwrap_or(i64::MAX));
            }
            metrics.audit_violations.lane(vl).add(lane.violations);
        }
    }

    /// Renders the pass/fail table plus the worst-offender line —
    /// the body of `ibaqos audit`.
    #[must_use]
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "vl  d.slots  bound.cycles  gap.slots.max  gap.cycles.max  grants  violations  verdict\n",
        );
        for (vl, lane) in self.active_lanes() {
            let (d, bound) = match lane.budget {
                Some(b) => (b.d_slots.to_string(), b.bound_cycles.to_string()),
                None => ("-".to_string(), "-".to_string()),
            };
            let verdict = match lane.passed() {
                Some(true) => "pass",
                Some(false) => "FAIL",
                None => "observed",
            };
            out.push_str(&format!(
                "{vl:<3} {d:>7}  {bound:>12}  {:>13}  {:>14}  {:>6}  {:>10}  {verdict}\n",
                lane.gap_slots_max, lane.gap_cycles_max, lane.grants, lane.violations,
            ));
        }
        if let Some((vl, lane)) = self.worst_offender() {
            let budget = match lane.budget {
                Some(b) => format!("{} slots / {} cycles", b.d_slots, b.bound_cycles),
                None => "unbudgeted".to_string(),
            };
            out.push_str(&format!(
                "worst offender: vl={vl} gap={} slots / {} cycles (budget {budget})\n",
                lane.gap_slots_max, lane.gap_cycles_max,
            ));
        }
        out
    }
}

impl Recorder for GuaranteeAuditor {
    #[inline]
    fn tick(&mut self, now: u64) {
        self.now = now;
    }

    #[inline]
    fn arb_weight_exhausted(&mut self, _vl: u8) {
        // One exhaustion == one finished slot activation: the arbiter
        // moved (or is about to move) past one table entry.
        self.slot_visits = self.slot_visits.saturating_add(1);
    }

    fn arb_grant(&mut self, vl: u8, _bytes: u64, served: ServedKind) {
        // The d·slot guarantee is a high-priority-table property; low
        // table and VL15 bypass grants are out of contract.
        if served != ServedKind::High {
            return;
        }
        let now = self.now;
        let visits = self.slot_visits;
        let lane = &mut self.lanes[usize::from(vl & 0x0F)];
        lane.grants += 1;
        if let (Some(prev_cycle), Some(prev_visit)) = (lane.last_cycle, lane.last_visit) {
            let gap_cycles = now.saturating_sub(prev_cycle);
            let gap_slots = visits.saturating_sub(prev_visit);
            lane.gap_cycles_max = lane.gap_cycles_max.max(gap_cycles);
            lane.gap_slots_max = lane.gap_slots_max.max(gap_slots);
            if let Some(b) = lane.budget {
                if gap_slots > b.d_slots || gap_cycles > b.bound_cycles {
                    lane.violations += 1;
                    if let Some(t) = self.tracer.as_mut() {
                        t.push(
                            now,
                            TraceEvent::AuditViolation {
                                vl,
                                gap_slots: u32::try_from(gap_slots).unwrap_or(u32::MAX),
                                budget_slots: u16::try_from(b.d_slots).unwrap_or(u16::MAX),
                            },
                        );
                    }
                }
            }
        }
        lane.last_cycle = Some(now);
        lane.last_visit = Some(visits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(a: &mut GuaranteeAuditor, now: u64, vl: u8) {
        a.tick(now);
        a.arb_grant(vl, 64, ServedKind::High);
        a.arb_weight_exhausted(vl);
    }

    #[test]
    fn within_budget_never_violates() {
        let mut a = GuaranteeAuditor::new();
        a.set_budget(
            2,
            LaneBudget {
                d_slots: 4,
                bound_cycles: 1000,
            },
        );
        // Grants every 4 slot visits / 400 cycles: exactly on budget.
        for i in 0..10u64 {
            a.tick(i * 400);
            a.arb_grant(2, 64, ServedKind::High);
            for _ in 0..4 {
                a.arb_weight_exhausted(0);
            }
        }
        assert_eq!(a.lane(2).violations(), 0);
        assert_eq!(a.lane(2).gap_slots_max(), 4);
        assert_eq!(a.lane(2).gap_cycles_max(), 400);
        assert_eq!(a.lane(2).passed(), Some(true));
        assert_eq!(a.violations_total(), 0);
    }

    #[test]
    fn slot_budget_overrun_is_a_violation() {
        let mut a = GuaranteeAuditor::with_tracer(8);
        a.set_budget(
            3,
            LaneBudget {
                d_slots: 2,
                bound_cycles: u64::MAX,
            },
        );
        grant(&mut a, 0, 3);
        // Walk 3 other slots before the next grant: gap 4 > budget 2.
        for _ in 0..3 {
            a.arb_weight_exhausted(0);
        }
        grant(&mut a, 100, 3);
        assert_eq!(a.lane(3).violations(), 1);
        assert_eq!(a.lane(3).gap_slots_max(), 4);
        assert_eq!(a.lane(3).passed(), Some(false));
        let traced = a.tracer().map(RingTracer::records).unwrap_or_default();
        assert_eq!(traced.len(), 1);
        assert!(matches!(
            traced[0].1,
            TraceEvent::AuditViolation {
                vl: 3,
                gap_slots: 4,
                budget_slots: 2,
            }
        ));
    }

    #[test]
    fn cycle_budget_overrun_is_a_violation() {
        let mut a = GuaranteeAuditor::new();
        a.set_budget(
            1,
            LaneBudget {
                d_slots: u64::MAX,
                bound_cycles: 500,
            },
        );
        grant(&mut a, 0, 1);
        grant(&mut a, 501, 1);
        assert_eq!(a.lane(1).violations(), 1);
        assert_eq!(a.lane(1).gap_cycles_max(), 501);
    }

    #[test]
    fn low_and_vl15_grants_are_out_of_contract() {
        let mut a = GuaranteeAuditor::new();
        a.set_budget(
            0,
            LaneBudget {
                d_slots: 1,
                bound_cycles: 1,
            },
        );
        a.tick(0);
        a.arb_grant(0, 64, ServedKind::Low);
        a.tick(10_000);
        a.arb_grant(0, 64, ServedKind::Management);
        assert_eq!(a.lane(0).grants(), 0);
        assert_eq!(a.violations_total(), 0);
    }

    #[test]
    fn observe_only_lane_tracks_gaps_without_violations() {
        let mut a = GuaranteeAuditor::new();
        grant(&mut a, 0, 5);
        grant(&mut a, 9_999, 5);
        assert_eq!(a.lane(5).gap_cycles_max(), 9_999);
        assert_eq!(a.lane(5).violations(), 0);
        assert_eq!(a.lane(5).passed(), None);
    }

    #[test]
    fn worst_offender_ranks_by_budget_ratio() {
        let mut a = GuaranteeAuditor::new();
        a.set_budget(
            1,
            LaneBudget {
                d_slots: 16,
                bound_cycles: u64::MAX,
            },
        );
        a.set_budget(
            2,
            LaneBudget {
                d_slots: 2,
                bound_cycles: u64::MAX,
            },
        );
        // vl=1 gap 8 of 16 (50%); vl=2 gap 3 of 2 (150%) — vl=2 is worse
        // despite the smaller absolute gap.
        a.tick(0);
        a.arb_grant(1, 64, ServedKind::High);
        a.arb_grant(2, 64, ServedKind::High);
        for _ in 0..3 {
            a.arb_weight_exhausted(0);
        }
        a.tick(5);
        a.arb_grant(2, 64, ServedKind::High); // gap 3 of 2
        for _ in 0..5 {
            a.arb_weight_exhausted(0);
        }
        a.tick(9);
        a.arb_grant(1, 64, ServedKind::High); // gap 8 of 16
        let (vl, lane) = a.worst_offender().expect("two lanes granted twice");
        assert_eq!(vl, 2);
        assert_eq!(lane.gap_slots_max(), 3);
        assert_eq!(a.lane(2).violations(), 1);
        assert_eq!(a.lane(1).violations(), 0);
    }

    #[test]
    fn export_feeds_audit_metrics() {
        let mut a = GuaranteeAuditor::new();
        a.set_budget(
            4,
            LaneBudget {
                d_slots: 2,
                bound_cycles: 100,
            },
        );
        grant(&mut a, 0, 4);
        grant(&mut a, 250, 4);
        let mut m = Metrics::new();
        a.export_into(&mut m);
        assert_eq!(m.audit_gap_max.0[4].get(), 250);
        assert_eq!(m.audit_bound_cycles.0[4].get(), 100);
        assert_eq!(m.audit_violations.0[4].get(), 1);
    }

    #[test]
    fn report_renders_pass_and_fail_rows() {
        let mut a = GuaranteeAuditor::new();
        a.set_budget(
            0,
            LaneBudget {
                d_slots: 4,
                bound_cycles: 1_000,
            },
        );
        a.set_budget(
            1,
            LaneBudget {
                d_slots: 1,
                bound_cycles: 10,
            },
        );
        grant(&mut a, 0, 0);
        grant(&mut a, 100, 0);
        grant(&mut a, 100, 1);
        grant(&mut a, 500, 1);
        let report = a.render_report();
        assert!(report.contains("pass"));
        assert!(report.contains("FAIL"));
        assert!(report.contains("worst offender: vl=1"));
    }
}
