//! Renderers: human-readable metric reports (`ibaqos report`) and the
//! machine-readable `BENCH_*.json` schema written by the bench smoke
//! tier.

use crate::json::Json;
use crate::metrics::{Metrics, Sample, SampleValue};

/// One measured benchmark, as serialized into a `BENCH_*.json` file.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Benchmark name (e.g. `alloc/bitrev/d64`).
    pub name: String,
    /// Iterations measured per sample.
    pub iters: u64,
    /// Median nanoseconds per operation.
    pub ns_per_op: f64,
    /// 50th-percentile nanoseconds per operation across samples.
    pub p50_ns: f64,
    /// 99th-percentile nanoseconds per operation across samples.
    pub p99_ns: f64,
}

impl BenchRecord {
    fn to_json(&self) -> Json {
        Json::Object(vec![
            ("name".into(), Json::str(self.name.clone())),
            ("iters".into(), Json::uint(self.iters)),
            ("ns_per_op".into(), Json::Float(self.ns_per_op)),
            ("p50_ns".into(), Json::Float(self.p50_ns)),
            ("p99_ns".into(), Json::Float(self.p99_ns)),
        ])
    }
}

/// One virtual lane's share of serviced bytes, derived from a sim run.
#[derive(Clone, Copy, Debug)]
pub struct VlShare {
    /// The virtual lane.
    pub vl: u8,
    /// Bytes the arbiter serviced on this lane.
    pub bytes: u64,
    /// This lane's fraction of all serviced bytes (`0.0..=1.0`).
    pub share: f64,
}

/// Derives per-VL throughput shares from a metrics registry's
/// `arb_bytes_total` counters. Empty when nothing was serviced.
#[must_use]
pub fn vl_shares(metrics: &Metrics) -> Vec<VlShare> {
    let total: u64 = metrics.arb_bytes.0.iter().map(|c| c.get()).sum();
    if total == 0 {
        return Vec::new();
    }
    metrics
        .arb_bytes
        .0
        .iter()
        .enumerate()
        .filter(|(_, c)| c.get() > 0)
        .map(|(vl, c)| VlShare {
            vl: vl as u8,
            bytes: c.get(),
            share: c.get() as f64 / total as f64,
        })
        .collect()
}

/// Builds the `BENCH_*.json` document for a suite.
///
/// Schema: `{ suite, schema_version, benches: [{name, iters, ns_per_op,
/// p50_ns, p99_ns}], per_vl_shares: [{vl, bytes, share}] }`. Both lists
/// may be empty (a filtered-out or zero-iteration run still writes a
/// well-formed document).
#[must_use]
pub fn bench_json(suite: &str, records: &[BenchRecord], shares: &[VlShare]) -> String {
    let benches = records.iter().map(BenchRecord::to_json).collect();
    let share_items = shares
        .iter()
        .map(|s| {
            Json::Object(vec![
                ("vl".into(), Json::Int(i64::from(s.vl))),
                ("bytes".into(), Json::uint(s.bytes)),
                ("share".into(), Json::Float(s.share)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("suite".into(), Json::str(suite)),
        ("schema_version".into(), Json::Int(1)),
        ("benches".into(), Json::Array(benches)),
        ("per_vl_shares".into(), Json::Array(share_items)),
    ])
    .pretty()
}

fn render_sample(s: &Sample) -> String {
    let dim = s.dim.to_string();
    let label = if dim.is_empty() {
        s.name.to_string()
    } else {
        format!("{}{{{}}}", s.name, dim)
    };
    match s.value {
        SampleValue::Count(v) => format!("  {label:<44} {v}"),
        SampleValue::Hist {
            count,
            sum,
            p50,
            p99,
        } => {
            format!("  {label:<44} count={count} sum={sum} p50<={p50} p99<={p99}")
        }
    }
}

/// Renders a metrics registry as a text report (the body of `ibaqos
/// report`). An untouched registry renders a single "no data" line
/// rather than panicking or printing an empty table.
#[must_use]
pub fn render_metrics(metrics: &Metrics) -> String {
    let snap = metrics.snapshot();
    if snap.is_empty() {
        return "metrics: no data recorded\n".to_string();
    }
    let mut out = String::from("metrics:\n");
    for s in &snap {
        out.push_str(&render_sample(s));
        out.push('\n');
    }
    let shares = vl_shares(metrics);
    if !shares.is_empty() {
        out.push_str("\nper-VL serviced-bytes shares:\n");
        for s in &shares {
            out.push_str(&format!(
                "  vl={:<2} bytes={:<12} share={:.2}%\n",
                s.vl,
                s.bytes,
                s.share * 100.0
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_renders_no_data_without_panicking() {
        let m = Metrics::new();
        let text = render_metrics(&m);
        assert!(text.contains("no data recorded"));
        assert!(vl_shares(&m).is_empty());
    }

    #[test]
    fn report_includes_per_vl_shares() {
        let mut m = Metrics::new();
        m.arb_bytes.lane(0).add(300);
        m.arb_bytes.lane(1).add(100);
        let shares = vl_shares(&m);
        assert_eq!(shares.len(), 2);
        assert!((shares[0].share - 0.75).abs() < 1e-12);
        assert!((shares[1].share - 0.25).abs() < 1e-12);
        let text = render_metrics(&m);
        assert!(text.contains("per-VL serviced-bytes shares"));
        assert!(text.contains("vl=0"));
        assert!(text.contains("75.00%"));
    }

    #[test]
    fn report_renders_histograms() {
        let mut m = Metrics::new();
        m.alloc_probe_depth.observe(3);
        m.alloc_probe_depth.observe(5);
        let text = render_metrics(&m);
        assert!(text.contains("alloc_probe_depth"));
        assert!(text.contains("count=2"));
    }

    #[test]
    fn bench_json_is_well_formed_when_empty() {
        let doc = bench_json("alloc", &[], &[]);
        assert!(doc.contains("\"suite\": \"alloc\""));
        assert!(doc.contains("\"benches\": []"));
        assert!(doc.contains("\"per_vl_shares\": []"));
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn bench_json_serializes_records_and_shares() {
        let records = vec![BenchRecord {
            name: "alloc/bitrev/d64".into(),
            iters: 1000,
            ns_per_op: 12.5,
            p50_ns: 12.0,
            p99_ns: 19.25,
        }];
        let shares = vec![VlShare {
            vl: 1,
            bytes: 4096,
            share: 0.75,
        }];
        let doc = bench_json("alloc", &records, &shares);
        assert!(doc.contains("\"name\": \"alloc/bitrev/d64\""));
        assert!(doc.contains("\"iters\": 1000"));
        assert!(doc.contains("\"ns_per_op\": 12.5"));
        assert!(doc.contains("\"p99_ns\": 19.25"));
        assert!(doc.contains("\"vl\": 1"));
        assert!(doc.contains("\"share\": 0.75"));
    }
}
