//! Windowed timeline aggregation: the time dimension of the metrics
//! registry.
//!
//! A [`Timeline`] slices a run into fixed-length windows of logical
//! ticks (simulator cycles, or finalized-operation indices on the
//! admission-service plane) and keeps one delta-encoded [`Metrics`]
//! registry per window: counters become per-window increments,
//! histograms per-window observation sets, gauges keep their level
//! reading. Windows are keyed by **absolute** window index
//! (`tick / window_len`), so two timelines recorded independently —
//! by different harness workers or different service shards — merge
//! window-wise with [`Metrics::merge`], which is commutative and
//! associative. A merged timeline is therefore byte-identical no
//! matter how many threads recorded it or in which order the pieces
//! were folded, which is what lets `TIMELINE.json` be compared with
//! `cmp` across `IBA_THREADS` settings in CI.
//!
//! The aggregator is driven from [`crate::recorder::ObsRecorder`]'s
//! `tick` hook: crossing a window boundary closes the open window by
//! subtracting the cumulative snapshot taken at its start
//! ([`Metrics::delta_from`]). Closing a window bumps
//! `timeline_window_total` *after* the delta is taken, so window
//! deltas never contain the bookkeeping counter while cumulative
//! snapshots do.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::{Metrics, Sample, SampleValue};

/// Schema identifier stamped into every `TIMELINE.json` document.
pub const TIMELINE_SCHEMA: &str = "iba.timeline.v1";

/// Default window length (ticks per window) used by the CLI and the
/// harness timeline drive when none is given.
pub const DEFAULT_WINDOW_LEN: u64 = 4096;

/// A windowed, delta-encoded view of a [`Metrics`] registry.
///
/// See the [module docs](crate::timeline) for the aggregation model.
#[derive(Clone, Debug)]
pub struct Timeline {
    window_len: u64,
    /// The open window's absolute index, once the first tick arrived.
    cur: Option<u64>,
    /// Cumulative registry state at the open window's start.
    cursor: Metrics,
    /// Closed windows: absolute index → per-window delta registry.
    windows: BTreeMap<u64, Metrics>,
}

impl Timeline {
    /// A timeline with `window_len` ticks per window (clamped to at
    /// least 1).
    #[must_use]
    pub fn new(window_len: u64) -> Self {
        Timeline {
            window_len: window_len.max(1),
            cur: None,
            cursor: Metrics::new(),
            windows: BTreeMap::new(),
        }
    }

    /// Ticks per window.
    #[must_use]
    pub fn window_len(&self) -> u64 {
        self.window_len
    }

    /// The closed windows, keyed by absolute window index.
    #[must_use]
    pub fn windows(&self) -> &BTreeMap<u64, Metrics> {
        &self.windows
    }

    /// Number of closed windows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has been closed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Advances the timeline to logical time `now`, closing the open
    /// window when `now` crosses into a later one. `metrics` is the
    /// live cumulative registry this timeline shadows. Backwards time
    /// is ignored (the harness replays runs whose clocks restart; the
    /// caller resets or re-creates the timeline between runs instead).
    pub fn tick(&mut self, now: u64, metrics: &mut Metrics) {
        let w = now / self.window_len;
        match self.cur {
            None => self.cur = Some(w),
            Some(c) if w > c => {
                self.close(c, metrics);
                self.cur = Some(w);
            }
            Some(_) => {}
        }
    }

    /// Closes the trailing partial window, if one is open. Call once
    /// when the run ends; further ticks then re-open from the current
    /// cumulative state.
    pub fn finish(&mut self, metrics: &mut Metrics) {
        if let Some(c) = self.cur.take() {
            self.close(c, metrics);
        }
    }

    fn close(&mut self, index: u64, metrics: &mut Metrics) {
        // Delta first, bump second: window deltas exclude the
        // bookkeeping counter, cumulative snapshots include it.
        let delta = metrics.delta_from(&self.cursor);
        metrics.timeline_windows.incr();
        self.cursor = metrics.clone();
        self.windows.entry(index).or_default().merge(&delta);
    }

    /// Folds another timeline's closed windows into this one,
    /// window-index-wise. Commutative and associative (it inherits
    /// both from [`Metrics::merge`]), so a fan-in over any number of
    /// worker timelines is independent of merge order. Open-window
    /// state is not merged — [`Timeline::finish`] each side first.
    /// Both sides must share a window length (caller bug otherwise).
    pub fn merge(&mut self, other: &Timeline) {
        debug_assert_eq!(
            self.window_len, other.window_len,
            "merging timelines with different window lengths"
        );
        for (idx, m) in &other.windows {
            self.windows.entry(*idx).or_default().merge(m);
        }
    }

    /// A copy keeping only the newest `k` closed windows (everything
    /// when `k` is 0 or at least the window count). Open-window state
    /// is dropped — the copy is a finished view for export.
    #[must_use]
    pub fn tail(&self, k: usize) -> Timeline {
        let mut out = Timeline {
            window_len: self.window_len,
            cur: None,
            cursor: Metrics::new(),
            windows: self.windows.clone(),
        };
        if k > 0 && out.windows.len() > k {
            let cut = *out
                .windows
                .keys()
                .rev()
                .nth(k - 1)
                .expect("len > k >= 1 guarantees a k-th newest key");
            out.windows.retain(|idx, _| *idx >= cut);
        }
        out
    }

    /// The schema-versioned `TIMELINE.json` document: window length,
    /// closed-window count and, per window, its absolute index, its
    /// inclusive `[start, end]` tick range and its delta snapshot
    /// (same name/dim contract as [`Metrics::snapshot`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let windows = self
            .windows
            .iter()
            .map(|(idx, m)| {
                let metrics = m.snapshot().iter().map(sample_json).collect();
                Json::Object(vec![
                    ("index".into(), Json::uint(*idx)),
                    ("start".into(), Json::uint(idx * self.window_len)),
                    ("end".into(), Json::uint((idx + 1) * self.window_len - 1)),
                    ("metrics".into(), Json::Array(metrics)),
                ])
            })
            .collect();
        Json::Object(vec![
            ("schema".into(), Json::str(TIMELINE_SCHEMA)),
            ("schema_version".into(), Json::Int(1)),
            ("window_len".into(), Json::uint(self.window_len)),
            ("window_count".into(), Json::uint(self.windows.len() as u64)),
            ("windows".into(), Json::Array(windows)),
        ])
    }

    /// Serialized [`Timeline::to_json`] — the exact bytes of a
    /// `TIMELINE.json` artifact.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// A fixed-width text table of the closed windows (the body of
    /// `ibaqos timeline`): per window, the tick range and the
    /// headline per-window rates.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "timeline: windows={} window_len={} schema={}\n",
            self.windows.len(),
            self.window_len,
            TIMELINE_SCHEMA
        );
        if self.windows.is_empty() {
            out.push_str("  (no closed windows)\n");
            return out;
        }
        out.push_str(&format!(
            "  {:>6} {:>10} {:>10} {:>8} {:>8} {:>10} {:>7} {:>7}\n",
            "window", "start", "end", "events", "grants", "bytes", "admits", "rejects"
        ));
        for (idx, m) in &self.windows {
            let grants: u64 = m.arb_grant.0.iter().map(|c| c.get()).sum();
            let bytes: u64 = m.arb_bytes.0.iter().map(|c| c.get()).sum();
            let admits: u64 = m.cac_admit.0.iter().map(|c| c.get()).sum();
            let rejects: u64 = m.cac_reject.iter().map(|c| c.get()).sum();
            out.push_str(&format!(
                "  {:>6} {:>10} {:>10} {:>8} {:>8} {:>10} {:>7} {:>7}\n",
                idx,
                idx * self.window_len,
                (idx + 1) * self.window_len - 1,
                m.sim_events.get(),
                grants,
                bytes,
                admits,
                rejects
            ));
        }
        out
    }
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new(DEFAULT_WINDOW_LEN)
    }
}

fn sample_json(s: &Sample) -> Json {
    let mut fields = vec![("name".to_string(), Json::str(s.name))];
    let dim = s.dim.to_string();
    if !dim.is_empty() {
        fields.push(("dim".into(), Json::str(dim)));
    }
    match s.value {
        SampleValue::Count(v) => fields.push(("value".into(), Json::uint(v))),
        SampleValue::Hist {
            count,
            sum,
            p50,
            p99,
        } => {
            fields.push(("count".into(), Json::uint(count)));
            fields.push(("sum".into(), Json::uint(sum)));
            fields.push(("p50".into(), Json::uint(p50)));
            fields.push(("p99".into(), Json::uint(p99)));
        }
    }
    Json::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_delta_encode_counters() {
        let mut tl = Timeline::new(10);
        let mut m = Metrics::new();
        tl.tick(0, &mut m);
        m.sim_events.add(3);
        m.arb_bytes.lane(1).add(100);
        tl.tick(12, &mut m); // closes window 0
        m.sim_events.add(5);
        tl.tick(25, &mut m); // closes window 1
        tl.finish(&mut m); // closes window 2 (empty delta)

        assert_eq!(tl.len(), 3);
        let w0 = &tl.windows()[&0];
        assert_eq!(w0.sim_events.get(), 3);
        assert_eq!(w0.arb_bytes.0[1].get(), 100);
        let w1 = &tl.windows()[&1];
        assert_eq!(w1.sim_events.get(), 5);
        assert_eq!(w1.arb_bytes.0[1].get(), 0);
        let w2 = &tl.windows()[&2];
        assert_eq!(w2.sim_events.get(), 0);
        // Cumulative registry counts every close; no window delta does.
        assert_eq!(m.timeline_windows.get(), 3);
        for w in tl.windows().values() {
            assert_eq!(w.timeline_windows.get(), 0);
        }
    }

    #[test]
    fn finish_is_idempotent_and_backwards_time_is_ignored() {
        let mut tl = Timeline::new(10);
        let mut m = Metrics::new();
        tl.tick(35, &mut m); // first tick far from zero: sparse start
        m.sim_events.incr();
        tl.tick(5, &mut m); // backwards: ignored
        tl.finish(&mut m);
        tl.finish(&mut m); // no open window: no-op
        assert_eq!(tl.len(), 1);
        assert!(tl.windows().contains_key(&3));
        assert_eq!(m.timeline_windows.get(), 1);
    }

    #[test]
    fn merge_is_window_wise_and_commutative() {
        let build = |skip: bool| {
            let mut tl = Timeline::new(10);
            let mut m = Metrics::new();
            tl.tick(0, &mut m);
            m.sim_events.add(if skip { 7 } else { 2 });
            tl.tick(11, &mut m);
            if !skip {
                m.cac_release.add(4);
                tl.tick(21, &mut m);
            }
            tl.finish(&mut m);
            tl
        };
        let a = build(false);
        let b = build(true);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.to_json_string(), ba.to_json_string());
        assert_eq!(ab.windows()[&0].sim_events.get(), 9);
        assert_eq!(ab.windows()[&1].cac_release.get(), 4);
    }

    #[test]
    fn json_document_carries_schema_and_ranges() {
        let mut tl = Timeline::new(8);
        let mut m = Metrics::new();
        tl.tick(0, &mut m);
        m.alloc_probe.incr();
        m.alloc_probe_depth.observe(3);
        tl.tick(9, &mut m);
        tl.finish(&mut m);

        let doc = tl.to_json_string();
        let parsed = Json::parse(&doc).expect("own output parses");
        assert_eq!(parsed.get("schema"), Some(&Json::str(TIMELINE_SCHEMA)));
        assert_eq!(parsed.get("window_len").and_then(Json::as_f64), Some(8.0));
        assert_eq!(parsed.get("window_count").and_then(Json::as_f64), Some(2.0));
        let windows = match parsed.get("windows") {
            Some(Json::Array(w)) => w,
            other => panic!("windows not an array: {other:?}"),
        };
        assert_eq!(windows[0].get("start").and_then(Json::as_f64), Some(0.0));
        assert_eq!(windows[0].get("end").and_then(Json::as_f64), Some(7.0));
        // The histogram sample serializes count/sum/p50/p99 fields.
        assert!(doc.contains("\"name\": \"alloc_probe_depth\""));
        assert!(doc.contains("\"p99\": "));
    }

    #[test]
    fn table_lists_each_window_once() {
        let mut tl = Timeline::new(10);
        let mut m = Metrics::new();
        tl.tick(0, &mut m);
        m.sim_events.add(4);
        m.arb_grant.lane(2).incr();
        m.arb_bytes.lane(2).add(512);
        tl.tick(15, &mut m);
        tl.finish(&mut m);
        let table = tl.render_table();
        assert!(table.starts_with("timeline: windows=2 window_len=10"));
        assert_eq!(table.lines().count(), 4); // header + columns + 2 rows
        assert!(table.contains("512"));
        // An empty timeline renders a placeholder, not a bare header.
        assert!(Timeline::new(5)
            .render_table()
            .contains("no closed windows"));
    }
}
