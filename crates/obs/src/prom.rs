//! Prometheus-style text exposition for [`Metrics`] snapshots.
//!
//! `ibaqos report --prom` (and the flight recorder's `metrics.prom`)
//! render a snapshot in the classic text exposition format: one
//! `# TYPE` line per metric family, then one sample line per
//! dimension with `{vl="3"}`-style labels. The workspace's fixed
//! bucket histograms carry only count/sum and the two contract
//! quantiles in a snapshot, so histogram families are exposed as
//! Prometheus **summaries** (`name{quantile="0.5"}`,
//! `name{quantile="0.99"}`, `name_sum`, `name_count`).
//!
//! Family types follow the metric-name contract: names ending in
//! `_total` are counters, histogram samples are summaries, everything
//! else (thread counts, audit gap levels) is a gauge. The output is a
//! pure function of the snapshot — fixed iteration order, no
//! timestamps — so it is golden-testable byte for byte.

use crate::metrics::{Dim, Metrics, SampleValue};

/// Renders a metrics registry in Prometheus text exposition format.
/// An untouched registry renders to an empty string.
#[must_use]
pub fn render_prom(metrics: &Metrics) -> String {
    let mut out = String::new();
    let mut last_family = "";
    for s in &metrics.snapshot() {
        if s.name != last_family {
            let ty = match s.value {
                SampleValue::Hist { .. } => "summary",
                SampleValue::Count(_) if s.name.ends_with("_total") => "counter",
                SampleValue::Count(_) => "gauge",
            };
            out.push_str(&format!("# TYPE {} {ty}\n", s.name));
            last_family = s.name;
        }
        match s.value {
            SampleValue::Count(v) => {
                out.push_str(&format!("{}{} {v}\n", s.name, label_set(s.dim, &[])));
            }
            SampleValue::Hist {
                count,
                sum,
                p50,
                p99,
            } => {
                out.push_str(&format!(
                    "{}{} {p50}\n",
                    s.name,
                    label_set(s.dim, &[("quantile", "0.5")])
                ));
                out.push_str(&format!(
                    "{}{} {p99}\n",
                    s.name,
                    label_set(s.dim, &[("quantile", "0.99")])
                ));
                out.push_str(&format!("{}_sum{} {sum}\n", s.name, label_set(s.dim, &[])));
                out.push_str(&format!(
                    "{}_count{} {count}\n",
                    s.name,
                    label_set(s.dim, &[])
                ));
            }
        }
    }
    out
}

/// Renders a `{key="value",...}` label set from a sample dimension
/// plus any extra labels; empty when there is nothing to label.
fn label_set(dim: Dim, extra: &[(&str, &str)]) -> String {
    let mut labels: Vec<(String, String)> = Vec::new();
    match dim {
        Dim::None => {}
        Dim::Vl(v) => labels.push(("vl".into(), v.to_string())),
        Dim::Sl(s) => labels.push(("sl".into(), s.to_string())),
        Dim::Reason(r) => labels.push(("reason".into(), r.to_string())),
        Dim::Shard(s) => labels.push(("shard".into(), s.to_string())),
        Dim::Rung(r) => labels.push(("rung".into(), r.to_string())),
    }
    for (k, v) in extra {
        labels.push(((*k).to_string(), (*v).to_string()));
    }
    if labels.is_empty() {
        return String::new();
    }
    let body = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\""))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_renders_empty_exposition() {
        assert_eq!(render_prom(&Metrics::new()), "");
    }

    #[test]
    fn counters_get_one_type_line_per_family() {
        let mut m = Metrics::new();
        m.arb_grant.lane(0).add(3);
        m.arb_grant.lane(5).incr();
        m.cac_release.add(2);
        let text = render_prom(&m);
        assert_eq!(
            text,
            "# TYPE arb_grant_total counter\n\
             arb_grant_total{vl=\"0\"} 3\n\
             arb_grant_total{vl=\"5\"} 1\n\
             # TYPE cac_release_total counter\n\
             cac_release_total 2\n"
        );
    }

    #[test]
    fn histograms_expose_as_summaries() {
        let mut m = Metrics::new();
        m.serve_batch_latency.observe(2);
        m.serve_batch_latency.observe(9);
        let text = render_prom(&m);
        assert!(text.contains("# TYPE serve_batch_latency summary\n"));
        assert!(text.contains("serve_batch_latency{quantile=\"0.5\"} "));
        assert!(text.contains("serve_batch_latency{quantile=\"0.99\"} "));
        assert!(text.contains("serve_batch_latency_sum 11\n"));
        assert!(text.contains("serve_batch_latency_count 2\n"));
    }

    #[test]
    fn gauges_and_reason_labels_render() {
        let mut m = Metrics::new();
        m.harness_threads.set(4);
        m.cac_reject[1].incr(); // capacity_exceeded
        let text = render_prom(&m);
        assert!(text.contains("# TYPE harness_threads gauge\n"));
        assert!(text.contains("harness_threads 4\n"));
        assert!(text.contains("cac_reject_total{reason=\"capacity_exceeded\"} 1\n"));
    }
}
