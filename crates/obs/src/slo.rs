//! A declarative SLO engine evaluated over timeline windows.
//!
//! Specs are small text expressions, clauses separated by `;`:
//!
//! ```text
//! p99(serve_batch_latency) <= 64
//! rate(audit_violations_total) == 0
//! rate(cac_reject_total{reason=capacity_exceeded}) <= 5 burn 0.25
//! ```
//!
//! Each clause names an aggregate over one metric from the
//! [`crate::metrics::METRIC_NAMES`] contract: `rate(..)` sums the
//! counter's per-window increment (across dimensions unless a
//! `{key=value}` filter narrows it), `p50(..)`/`p99(..)` read the
//! histogram quantiles of the window's delta histogram. The clause
//! holds in a window when the comparison (`<=`, `==`, `>=`) against
//! the bound is true. A clause *passes* when the fraction of
//! breaching windows is at most its **burn rate** (`burn F`, default
//! `0`: a single breaching window fails the clause).
//!
//! Evaluation is pure arithmetic over delta snapshots — no clocks, no
//! floats in the metric path — so a spec evaluated over a
//! deterministic timeline is itself deterministic, which is what lets
//! CI gate `ibaqos serve`/`audit`/`chaos` on `--slo` verdicts.

use crate::metrics::{Metrics, Sample, SampleValue};

/// The aggregate a clause applies to its metric's per-window delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Agg {
    /// Median of the window's delta histogram (bucket upper bound).
    P50,
    /// 99th percentile of the window's delta histogram.
    P99,
    /// Sum of the counter's per-window increments (over all matching
    /// dimensions).
    Rate,
}

impl Agg {
    fn label(self) -> &'static str {
        match self {
            Agg::P50 => "p50",
            Agg::P99 => "p99",
            Agg::Rate => "rate",
        }
    }
}

/// The comparison between the aggregate and the bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// Aggregate must be at most the bound.
    Le,
    /// Aggregate must equal the bound.
    Eq,
    /// Aggregate must be at least the bound.
    Ge,
}

impl Cmp {
    fn label(self) -> &'static str {
        match self {
            Cmp::Le => "<=",
            Cmp::Eq => "==",
            Cmp::Ge => ">=",
        }
    }

    fn holds(self, value: u64, bound: u64) -> bool {
        match self {
            Cmp::Le => value <= bound,
            Cmp::Eq => value == bound,
            Cmp::Ge => value >= bound,
        }
    }
}

/// One parsed clause of an SLO spec.
#[derive(Clone, Debug)]
pub struct SloClause {
    /// The aggregate applied per window.
    pub agg: Agg,
    /// The contract metric name the clause reads.
    pub metric: String,
    /// Optional dimension filter, e.g. `("reason", "capacity_exceeded")`.
    pub dim: Option<(String, String)>,
    /// The comparison operator.
    pub cmp: Cmp,
    /// The bound compared against.
    pub bound: u64,
    /// Allowed fraction of breaching windows (`0.0..=1.0`).
    pub burn: f64,
}

impl SloClause {
    /// Canonical text form of the clause (re-parseable).
    #[must_use]
    pub fn render(&self) -> String {
        let target = match &self.dim {
            Some((k, v)) => format!("{}{{{k}={v}}}", self.metric),
            None => self.metric.clone(),
        };
        let mut out = format!(
            "{}({target}) {} {}",
            self.agg.label(),
            self.cmp.label(),
            self.bound
        );
        if self.burn > 0.0 {
            out.push_str(&format!(" burn {}", self.burn));
        }
        out
    }

    /// The clause's aggregate over one window's delta snapshot.
    /// Missing metrics read as 0 — an absent counter is a zero rate
    /// and an untouched histogram has zero quantiles, matching
    /// [`Metrics::snapshot`]'s omission of untouched registries.
    #[must_use]
    pub fn measure(&self, window: &Metrics) -> u64 {
        let snap = window.snapshot();
        let matches = |s: &&Sample| {
            if s.name != self.metric {
                return false;
            }
            match &self.dim {
                None => true,
                Some((k, v)) => s.dim.to_string() == format!("{k}={v}"),
            }
        };
        match self.agg {
            Agg::Rate => snap
                .iter()
                .filter(matches)
                .map(|s| match s.value {
                    SampleValue::Count(v) => v,
                    SampleValue::Hist { count, .. } => count,
                })
                .sum(),
            Agg::P50 | Agg::P99 => snap
                .iter()
                .filter(matches)
                .find_map(|s| match s.value {
                    SampleValue::Hist { p50, p99, .. } => {
                        Some(if self.agg == Agg::P50 { p50 } else { p99 })
                    }
                    SampleValue::Count(_) => None,
                })
                .unwrap_or(0),
        }
    }
}

/// A parsed SLO spec: one or more clauses, all of which must pass.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// The clauses, in spec order.
    pub clauses: Vec<SloClause>,
}

impl SloSpec {
    /// Parses a spec string (clauses separated by `;`).
    ///
    /// # Errors
    /// Returns a message naming the offending clause on malformed
    /// input, an unknown aggregate/operator, a non-numeric bound or a
    /// burn rate outside `0.0..=1.0`. An empty spec is an error.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let mut clauses = Vec::new();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            clauses.push(parse_clause(raw)?);
        }
        if clauses.is_empty() {
            return Err("empty SLO spec".to_string());
        }
        Ok(SloSpec { clauses })
    }

    /// Evaluates the spec over closed timeline windows, one verdict
    /// per clause. `windows` is any ordered list of `(window_index,
    /// delta_metrics)` pairs — typically
    /// [`crate::timeline::Timeline::windows`]; callers without a
    /// timeline pass a single pseudo-window holding the cumulative
    /// snapshot. Zero windows pass vacuously (reported as such).
    #[must_use]
    pub fn evaluate(&self, windows: &[(u64, &Metrics)]) -> SloReport {
        let outcomes = self
            .clauses
            .iter()
            .map(|clause| {
                let mut breaching = 0usize;
                let mut worst: Option<(u64, u64)> = None;
                for (idx, m) in windows {
                    let value = clause.measure(m);
                    if !clause.cmp.holds(value, clause.bound) {
                        breaching += 1;
                        let further = match (clause.cmp, worst) {
                            (_, None) => true,
                            (Cmp::Ge, Some((_, w))) => value < w,
                            (_, Some((_, w))) => value > w,
                        };
                        if further {
                            worst = Some((*idx, value));
                        }
                    }
                }
                let fraction = if windows.is_empty() {
                    0.0
                } else {
                    breaching as f64 / windows.len() as f64
                };
                ClauseOutcome {
                    clause: clause.render(),
                    windows: windows.len(),
                    breaching,
                    burn: clause.burn,
                    pass: fraction <= clause.burn,
                    worst_window: worst.map(|(i, _)| i),
                    worst_value: worst.map(|(_, v)| v),
                }
            })
            .collect::<Vec<_>>();
        let pass = outcomes.iter().all(|o| o.pass);
        SloReport { outcomes, pass }
    }
}

/// One clause's verdict over the evaluated windows.
#[derive(Clone, Debug)]
pub struct ClauseOutcome {
    /// The clause, rendered back to its canonical text form.
    pub clause: String,
    /// Windows evaluated.
    pub windows: usize,
    /// Windows in which the clause did not hold.
    pub breaching: usize,
    /// The clause's allowed breaching fraction.
    pub burn: f64,
    /// Whether the clause passed.
    pub pass: bool,
    /// The breaching window with the most extreme aggregate, if any.
    pub worst_window: Option<u64>,
    /// The aggregate observed in that window.
    pub worst_value: Option<u64>,
}

/// A full spec evaluation: per-clause outcomes and the AND verdict.
#[derive(Clone, Debug)]
pub struct SloReport {
    /// Per-clause verdicts, in spec order.
    pub outcomes: Vec<ClauseOutcome>,
    /// `true` iff every clause passed.
    pub pass: bool,
}

impl SloReport {
    /// Stamps the evaluation into a metrics registry:
    /// `slo_eval_total` counts (clause × window) evaluations,
    /// `slo_breach_total` the breaching ones. Callers stamp *after*
    /// capturing any snapshot the verdict itself must not perturb.
    pub fn stamp(&self, metrics: &mut Metrics) {
        for o in &self.outcomes {
            metrics.slo_evals.add(o.windows as u64);
            metrics.slo_breaches.add(o.breaching as u64);
        }
    }

    /// Renders the report. The first line is machine-readable —
    /// `slo: verdict=PASS|FAIL clauses=N breaching_windows=M` — so CI
    /// can gate on `head -1 | grep '^slo: verdict='`; per-clause
    /// detail lines follow.
    #[must_use]
    pub fn render(&self) -> String {
        let breaching: usize = self.outcomes.iter().map(|o| o.breaching).sum();
        let mut out = format!(
            "slo: verdict={} clauses={} breaching_windows={}\n",
            if self.pass { "PASS" } else { "FAIL" },
            self.outcomes.len(),
            breaching
        );
        for o in &self.outcomes {
            out.push_str(&format!(
                "  [{}] {} windows={} breaching={}",
                if o.pass { "PASS" } else { "FAIL" },
                o.clause,
                o.windows,
                o.breaching
            ));
            if let (Some(w), Some(v)) = (o.worst_window, o.worst_value) {
                out.push_str(&format!(" worst_window={w} worst_value={v}"));
            }
            out.push('\n');
        }
        out
    }
}

fn parse_clause(raw: &str) -> Result<SloClause, String> {
    let err = |what: &str| format!("bad SLO clause `{raw}`: {what}");
    let open = raw.find('(').ok_or_else(|| err("missing `(`"))?;
    let agg = match &raw[..open] {
        "p50" => Agg::P50,
        "p99" => Agg::P99,
        "rate" => Agg::Rate,
        other => return Err(err(&format!("unknown aggregate `{other}`"))),
    };
    let close = raw.find(')').ok_or_else(|| err("missing `)`"))?;
    if close < open {
        return Err(err("`)` before `(`"));
    }
    let target = raw[open + 1..close].trim();
    let (metric, dim) = match target.find('{') {
        None => (target.to_string(), None),
        Some(brace) => {
            let end = target.find('}').ok_or_else(|| err("missing `}`"))?;
            let filter = &target[brace + 1..end];
            let (k, v) = filter
                .split_once('=')
                .ok_or_else(|| err("dimension filter is not `key=value`"))?;
            (
                target[..brace].trim().to_string(),
                Some((k.trim().to_string(), v.trim().to_string())),
            )
        }
    };
    if metric.is_empty() {
        return Err(err("empty metric name"));
    }
    let rest = raw[close + 1..].trim();
    let mut parts = rest.split_whitespace();
    let cmp = match parts.next() {
        Some("<=") => Cmp::Le,
        Some("==") => Cmp::Eq,
        Some(">=") => Cmp::Ge,
        Some(other) => return Err(err(&format!("unknown operator `{other}`"))),
        None => return Err(err("missing operator")),
    };
    let bound = parts
        .next()
        .ok_or_else(|| err("missing bound"))?
        .parse::<u64>()
        .map_err(|_| err("bound is not an unsigned integer"))?;
    let burn = match parts.next() {
        None => 0.0,
        Some("burn") => {
            let f = parts
                .next()
                .ok_or_else(|| err("missing burn fraction"))?
                .parse::<f64>()
                .map_err(|_| err("burn fraction is not a number"))?;
            if !(0.0..=1.0).contains(&f) {
                return Err(err("burn fraction outside 0.0..=1.0"));
            }
            f
        }
        Some(other) => return Err(err(&format!("trailing tokens from `{other}`"))),
    };
    if parts.next().is_some() {
        return Err(err("trailing tokens after clause"));
    }
    Ok(SloClause {
        agg,
        metric,
        dim,
        cmp,
        bound,
        burn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(events: u64, latency: &[u64]) -> Metrics {
        let mut m = Metrics::new();
        m.sim_events.add(events);
        for &v in latency {
            m.serve_batch_latency.observe(v);
        }
        m
    }

    #[test]
    fn parse_roundtrips_canonical_forms() {
        let spec = SloSpec::parse(
            "p99(serve_batch_latency) <= 64; \
             rate(cac_reject_total{reason=capacity_exceeded}) == 0; \
             rate(sim_events_total) >= 1 burn 0.5",
        )
        .expect("spec parses");
        assert_eq!(spec.clauses.len(), 3);
        assert_eq!(spec.clauses[0].render(), "p99(serve_batch_latency) <= 64");
        assert_eq!(
            spec.clauses[1].render(),
            "rate(cac_reject_total{reason=capacity_exceeded}) == 0"
        );
        assert_eq!(
            spec.clauses[2].render(),
            "rate(sim_events_total) >= 1 burn 0.5"
        );
        // The canonical form re-parses to the same canonical form.
        for c in &spec.clauses {
            let again = SloSpec::parse(&c.render()).expect("canonical re-parses");
            assert_eq!(again.clauses[0].render(), c.render());
        }
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "",
            " ; ;",
            "p99 serve_batch_latency <= 3",
            "max(serve_batch_latency) <= 3",
            "p99(serve_batch_latency) < 3",
            "p99(serve_batch_latency) <=",
            "p99(serve_batch_latency) <= -3",
            "p99() <= 3",
            "rate(x{reason}) == 0",
            "rate(x) == 0 burn 1.5",
            "rate(x) == 0 burn",
            "rate(x) == 0 extra",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn rate_clause_breaches_and_burn_forgives() {
        let w0 = window(10, &[]);
        let w1 = window(0, &[]);
        let w2 = window(7, &[]);
        let windows = vec![(0u64, &w0), (1, &w1), (2, &w2)];
        let strict = SloSpec::parse("rate(sim_events_total) >= 1").unwrap();
        let report = strict.evaluate(&windows);
        assert!(!report.pass);
        assert_eq!(report.outcomes[0].breaching, 1);
        assert_eq!(report.outcomes[0].worst_window, Some(1));
        assert_eq!(report.outcomes[0].worst_value, Some(0));
        // A burn rate of 1/3 forgives the single empty window.
        let lenient = SloSpec::parse("rate(sim_events_total) >= 1 burn 0.34").unwrap();
        assert!(lenient.evaluate(&windows).pass);
    }

    #[test]
    fn quantile_clause_reads_window_histograms() {
        let w0 = window(0, &[2, 3, 3, 4]);
        let w1 = window(0, &[2, 900]);
        let windows = vec![(0u64, &w0), (1, &w1)];
        let spec = SloSpec::parse("p99(serve_batch_latency) <= 64").unwrap();
        let report = spec.evaluate(&windows);
        assert!(!report.pass);
        assert_eq!(report.outcomes[0].breaching, 1);
        assert_eq!(report.outcomes[0].worst_window, Some(1));
        // The bucketed p99 of [2, 900] is the 900 bucket's upper bound.
        assert_eq!(report.outcomes[0].worst_value, Some(1023));
        assert!(
            SloSpec::parse("p50(serve_batch_latency) <= 4")
                .unwrap()
                .evaluate(&windows)
                .pass
        );
    }

    #[test]
    fn dimension_filter_narrows_the_rate() {
        let mut m = Metrics::new();
        m.cac_admit.lane(1).add(3);
        m.cac_admit.lane(2).add(5);
        let windows = vec![(0u64, &m)];
        let all = SloSpec::parse("rate(cac_admit_total) == 8").unwrap();
        assert!(all.evaluate(&windows).pass);
        let one = SloSpec::parse("rate(cac_admit_total{sl=2}) == 5").unwrap();
        assert!(one.evaluate(&windows).pass);
        let missing = SloSpec::parse("rate(cac_admit_total{sl=9}) == 0").unwrap();
        assert!(missing.evaluate(&windows).pass, "absent dim reads as 0");
    }

    #[test]
    fn report_renders_machine_readable_first_line_and_stamps() {
        let w0 = window(0, &[]);
        let windows = vec![(0u64, &w0)];
        let spec =
            SloSpec::parse("rate(sim_events_total) >= 1; rate(fault_injected_total) == 0").unwrap();
        let report = spec.evaluate(&windows);
        let text = report.render();
        let first = text.lines().next().unwrap();
        assert_eq!(first, "slo: verdict=FAIL clauses=2 breaching_windows=1");
        assert!(text.contains("[FAIL] rate(sim_events_total) >= 1"));
        assert!(text.contains("[PASS] rate(fault_injected_total) == 0"));

        let mut m = Metrics::new();
        report.stamp(&mut m);
        assert_eq!(m.slo_evals.get(), 2);
        assert_eq!(m.slo_breaches.get(), 1);

        // Zero windows: vacuous pass, still machine-readable.
        let empty = spec.evaluate(&[]);
        assert!(empty.pass);
        assert!(empty.render().starts_with("slo: verdict=PASS"));
    }
}
