//! The [`Recorder`] trait — the single seam between the hot paths and
//! the observability layer — plus its two implementations:
//! [`NullRecorder`] (free) and [`ObsRecorder`] (metrics + trace).
//!
//! Hot paths are generic over `R: Recorder` (or take `&mut dyn
//! Recorder` on control-plane paths where a virtual no-op call is
//! irrelevant). Every hook has an inline empty default, so with
//! [`NullRecorder`] the compiler erases the instrumentation entirely
//! and the non-observed build keeps its original fast path.

use crate::metrics::Metrics;
use crate::trace::{RingTracer, TraceEvent};

/// Which arbitration table served a grant, as seen by the recorder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServedKind {
    /// The high-priority table.
    High,
    /// The low-priority table.
    Low,
    /// VL15 management bypass (never arbitrated).
    Management,
}

impl ServedKind {
    /// Stable wire code used in trace records.
    #[must_use]
    pub fn code(self) -> u16 {
        match self {
            ServedKind::High => 0,
            ServedKind::Low => 1,
            ServedKind::Management => 2,
        }
    }

    /// Decodes a wire code (`None` for unknown codes).
    #[must_use]
    pub fn from_code(c: u16) -> Option<Self> {
        match c {
            0 => Some(ServedKind::High),
            1 => Some(ServedKind::Low),
            2 => Some(ServedKind::Management),
            _ => None,
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServedKind::High => "high",
            ServedKind::Low => "low",
            ServedKind::Management => "vl15",
        }
    }
}

/// Why an admission request was rejected, as seen by the recorder.
/// Mirrors `iba-qos`'s reject reasons without depending on that crate
/// (the dependency points the other way).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectKind {
    /// No free entry sequence for the requested distance.
    NoFreeSequence,
    /// The reservation cap (e.g. the 80% QoS share) was hit.
    CapacityExceeded,
    /// The request exceeds one sequence's capacity.
    RequestTooLarge,
    /// Malformed request (zero weight, stale handle, ...).
    Invalid,
    /// Shed by the admission service's load-shedding ladder (bounded
    /// queue full, SL below the shedding floor).
    Overloaded,
}

impl RejectKind {
    /// Index into [`crate::metrics::REJECT_REASONS`] and the trace
    /// wire code.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RejectKind::NoFreeSequence => 0,
            RejectKind::CapacityExceeded => 1,
            RejectKind::RequestTooLarge => 2,
            RejectKind::Invalid => 3,
            RejectKind::Overloaded => 4,
        }
    }

    /// Decodes a wire code (`None` for unknown codes).
    #[must_use]
    pub fn from_code(c: u16) -> Option<Self> {
        match c {
            0 => Some(RejectKind::NoFreeSequence),
            1 => Some(RejectKind::CapacityExceeded),
            2 => Some(RejectKind::RequestTooLarge),
            3 => Some(RejectKind::Invalid),
            4 => Some(RejectKind::Overloaded),
            _ => None,
        }
    }

    /// Stable label (one of [`crate::metrics::REJECT_REASONS`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        crate::metrics::REJECT_REASONS[self.index()]
    }
}

/// Instrumentation hooks called from the workspace's hot paths.
///
/// All hooks default to inline no-ops: implementors override only what
/// they consume, and [`NullRecorder`] overrides nothing, making the
/// instrumented code identical to the uninstrumented code after
/// monomorphization.
pub trait Recorder {
    /// Advances the recorder's notion of time (simulator cycles);
    /// subsequent trace events are stamped with this value.
    #[inline]
    fn tick(&mut self, _now: u64) {}

    /// One allocator probe of an `E_{i,j}` set; `rejected` when the
    /// set was busy.
    #[inline]
    fn alloc_probe(&mut self, _rejected: bool) {}

    /// One allocator select finished after `depth` probes; `found`
    /// reports whether a free set was returned.
    #[inline]
    fn alloc_select(&mut self, _depth: u32, _found: bool) {}

    /// An arbitration grant of `bytes` on `vl` by the given table.
    #[inline]
    fn arb_grant(&mut self, _vl: u8, _bytes: u64, _served: ServedKind) {}

    /// A grant drained its table entry's remaining weight credit.
    #[inline]
    fn arb_weight_exhausted(&mut self, _vl: u8) {}

    /// A head packet on `vl` was routed to the arbitrating output but
    /// blocked by missing downstream credit (head-of-line stall
    /// observation; counted per arbitration pass, not per packet).
    #[inline]
    fn arb_hol_stall(&mut self, _vl: u8) {}

    /// Depth (whole packets, including the granted one) of the queue a
    /// grant was served from.
    #[inline]
    fn arb_queue_depth(&mut self, _packets: u64) {}

    /// One event popped from the simulator's calendar queue;
    /// `pending` is the number of events still queued after the pop.
    #[inline]
    fn sim_event(&mut self, _pending: u64) {}

    /// A connection of service level `sl` was admitted end to end.
    #[inline]
    fn cac_admit(&mut self, _sl: u8) {}

    /// An admission request was rejected.
    #[inline]
    fn cac_reject(&mut self, _reason: RejectKind) {}

    /// A connection was torn down (its reservations released).
    #[inline]
    fn cac_release(&mut self) {}

    /// A fault action was applied by the fault-injection calendar.
    /// `code` is one of the [`crate::trace::fault_code`] constants,
    /// `port` the affected port and `detail` a code-specific value
    /// (mask, rate shift, corruption seed).
    #[inline]
    fn fault_injected(&mut self, _code: u8, _port: u16, _detail: u32) {}

    /// An arbitration candidate on `vl` was suppressed by an active
    /// fault (link down, VL blackout or frozen credits).
    #[inline]
    fn fault_blocked(&mut self, _vl: u8) {}

    /// A table change invalidated an output port's compiled grant
    /// schedule (admit, teardown, repair or fault corruption).
    #[inline]
    fn schedule_invalidated(&mut self) {}

    /// An arbitration table was compiled into a grant schedule
    /// (always paired with an invalidation after the initial setup).
    #[inline]
    fn schedule_compiled(&mut self) {}

    /// The recovery manager repaired a damaged table, evicting
    /// `evicted` orphaned or corrupt sequences.
    #[inline]
    fn recovery_repair(&mut self, _evicted: u64) {}

    /// The recovery manager re-installed a repaired sequence (or a
    /// repaired table onto the fabric).
    #[inline]
    fn recovery_reinstall(&mut self) {}

    /// The recovery manager retried an admission after a deterministic
    /// backoff of `backoff_cycles` cycles.
    #[inline]
    fn recovery_retry(&mut self, _backoff_cycles: u64) {}

    /// A recovery re-install had to loosen the contracted distance
    /// (one step down the graceful-degradation ladder).
    #[inline]
    fn recovery_degraded(&mut self) {}

    /// A shard of the admission service committed one hop reservation.
    #[inline]
    fn serve_shard_admit(&mut self, _shard: u8) {}

    /// A shard of the admission service denied an admission vote.
    #[inline]
    fn serve_shard_reject(&mut self, _shard: u8) {}

    /// A shard rolled back already-committed hops of an aborted
    /// multi-hop batch.
    #[inline]
    fn serve_shard_rollback(&mut self, _shard: u8) {}

    /// Dispatched-but-unfinalized operation count observed by the
    /// admission-service coordinator at a dispatch.
    #[inline]
    fn serve_queue_depth(&mut self, _depth: u64) {}

    /// Logical ticks (finalized operations) between an operation's
    /// dispatch and its finalization by the coordinator.
    #[inline]
    fn serve_batch_latency(&mut self, _ticks: u64) {}

    /// An injected shard-worker crash destroyed `shard`'s volatile
    /// state (tables, reply cache); a supervised restart follows.
    #[inline]
    fn serve_crash(&mut self, _shard: u8) {}

    /// A supervised restart of `shard` replayed `records` write-ahead
    /// journal records to rebuild its partition.
    #[inline]
    fn serve_journal_replay(&mut self, _shard: u8, _records: u64) {}

    /// The coordinator's deterministic timeout for a message to
    /// `shard` expired after a backoff of `backoff` cycles; a retry
    /// goes out.
    #[inline]
    fn serve_timeout(&mut self, _shard: u8, _backoff: u64) {}

    /// The admission queue was full and the load-shedding ladder acted
    /// at `rung` (0 = lowest-SL shed, 1 = degraded install).
    #[inline]
    fn serve_shed(&mut self, _rung: u8) {}

    /// One causal stage of an admission-service request: `rid` is the
    /// request id (the trace-op index), `stage` one of the
    /// [`crate::trace::request_stage`] constants, `shard` the shard
    /// that observed the stage and `path` the hop index within the
    /// request's path ([`crate::trace::request_stage::NO_PATH`] when
    /// the stage is not hop-specific). Trace-only: no metric moves.
    #[inline]
    fn request_stage(&mut self, _rid: u32, _stage: u8, _shard: u8, _path: u8) {}

    /// A wall-clock profiling span named `name` opened on the calling
    /// thread. No-op unless the recorder carries a
    /// [`crate::span::SpanRecorder`].
    #[inline]
    fn span_begin(&mut self, _name: &'static str) {}

    /// The matching close of [`Recorder::span_begin`].
    #[inline]
    fn span_end(&mut self, _name: &'static str) {}
}

/// The do-nothing recorder: the default for every non-observed run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

/// The real recorder: updates a [`Metrics`] registry and, when
/// enabled, appends compact records to a bounded [`RingTracer`].
#[derive(Clone, Debug, Default)]
pub struct ObsRecorder {
    /// The metrics registry being filled.
    pub metrics: Metrics,
    /// The event tracer, when tracing is enabled.
    pub tracer: Option<RingTracer>,
    /// The wall-clock span profiler, when profiling is enabled.
    pub spans: Option<crate::span::SpanRecorder>,
    /// The windowed timeline aggregator, when timelines are enabled.
    pub timeline: Option<crate::timeline::Timeline>,
    now: u64,
}

impl ObsRecorder {
    /// A metrics-only recorder (no tracing).
    #[must_use]
    pub fn new() -> Self {
        ObsRecorder::default()
    }

    /// A recorder that also traces into a ring of `capacity` records.
    #[must_use]
    pub fn with_tracer(capacity: usize) -> Self {
        ObsRecorder {
            tracer: Some(RingTracer::new(capacity)),
            ..ObsRecorder::default()
        }
    }

    /// A recorder that also profiles wall-clock spans into a ring of
    /// `capacity` records.
    #[must_use]
    pub fn with_spans(capacity: usize) -> Self {
        ObsRecorder {
            spans: Some(crate::span::SpanRecorder::new(capacity)),
            ..ObsRecorder::default()
        }
    }

    /// A recorder that also aggregates a windowed timeline with
    /// `window_len` ticks per window (see [`crate::timeline`]).
    #[must_use]
    pub fn with_timeline(window_len: u64) -> Self {
        ObsRecorder {
            timeline: Some(crate::timeline::Timeline::new(window_len)),
            ..ObsRecorder::default()
        }
    }

    /// Closes the timeline's trailing partial window, if a timeline is
    /// attached and has an open window. Call once when a run ends.
    pub fn finish_timeline(&mut self) {
        if let Some(tl) = self.timeline.as_mut() {
            tl.finish(&mut self.metrics);
        }
    }

    /// The recorder's current timestamp (last [`Recorder::tick`]).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    #[inline]
    fn trace(&mut self, ev: TraceEvent) {
        if let Some(t) = self.tracer.as_mut() {
            t.push(self.now, ev);
        }
    }

    /// Folds another recorder's **metrics** into this one (see
    /// [`Metrics::merge`]: commutative, so merge order never matters).
    ///
    /// Trace rings are deliberately *not* merged — a ring is a bounded
    /// window of one run's newest events, and interleaving two rings
    /// would fabricate an ordering that never existed. The parallel
    /// harness therefore merges metrics and leaves per-run traces with
    /// their runs.
    ///
    /// Span rings *are* merged when both sides carry one: span records
    /// are tagged with their recording thread, so a union is a valid
    /// multi-track wall-clock timeline (workers share the merge
    /// target's epoch via [`crate::span::SpanRecorder::with_epoch`]).
    ///
    /// Timelines are likewise merged when both sides carry one:
    /// windows are keyed by absolute window index, so a window-wise
    /// [`Metrics::merge`] is commutative and the merged timeline is
    /// independent of merge order (see [`crate::timeline::Timeline`]).
    pub fn merge(&mut self, other: &ObsRecorder) {
        self.metrics.merge(&other.metrics);
        self.now = self.now.max(other.now);
        if let (Some(mine), Some(theirs)) = (self.spans.as_mut(), other.spans.as_ref()) {
            mine.merge(theirs);
        }
        if let (Some(mine), Some(theirs)) = (self.timeline.as_mut(), other.timeline.as_ref()) {
            mine.merge(theirs);
        }
    }
}

// The harness moves recorders across worker threads; keep the whole
// recording stack `Send` by construction (compile-time check).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ObsRecorder>();
    assert_send::<Metrics>();
    assert_send::<NullRecorder>();
};

impl Recorder for ObsRecorder {
    #[inline]
    fn tick(&mut self, now: u64) {
        self.now = now;
        // Disjoint field borrows: the timeline reads/mutates the
        // metrics registry while borrowed out of the same struct.
        if let Some(tl) = self.timeline.as_mut() {
            tl.tick(now, &mut self.metrics);
        }
    }

    #[inline]
    fn alloc_probe(&mut self, rejected: bool) {
        self.metrics.alloc_probe.incr();
        if rejected {
            self.metrics.alloc_probe_rejected.incr();
        }
    }

    fn alloc_select(&mut self, depth: u32, found: bool) {
        if found {
            self.metrics.alloc_probe_depth.observe(u64::from(depth));
        } else {
            self.metrics.alloc_select_fail.incr();
        }
        self.trace(TraceEvent::AllocSelect { depth, found });
    }

    #[inline]
    fn arb_grant(&mut self, vl: u8, bytes: u64, served: ServedKind) {
        self.metrics.arb_grant.lane(vl).incr();
        self.metrics.arb_bytes.lane(vl).add(bytes);
        match served {
            ServedKind::High => self.metrics.arb_high_bytes.add(bytes),
            ServedKind::Low => self.metrics.arb_low_bytes.add(bytes),
            ServedKind::Management => self.metrics.arb_vl15_bytes.add(bytes),
        }
        self.trace(TraceEvent::Grant { vl, bytes, served });
    }

    #[inline]
    fn arb_weight_exhausted(&mut self, vl: u8) {
        self.metrics.arb_weight_exhausted.lane(vl).incr();
        self.trace(TraceEvent::WeightExhausted { vl });
    }

    #[inline]
    fn arb_hol_stall(&mut self, vl: u8) {
        self.metrics.arb_hol_stall.lane(vl).incr();
        self.trace(TraceEvent::HolStall { vl });
    }

    #[inline]
    fn arb_queue_depth(&mut self, packets: u64) {
        self.metrics.arb_queue_depth.observe(packets);
    }

    #[inline]
    fn sim_event(&mut self, pending: u64) {
        self.metrics.sim_events.incr();
        self.metrics.sim_event_queue_depth.observe(pending);
    }

    fn cac_admit(&mut self, sl: u8) {
        self.metrics.cac_admit.lane(sl).incr();
        self.trace(TraceEvent::Admit { sl });
    }

    fn cac_reject(&mut self, reason: RejectKind) {
        self.metrics.cac_reject[reason.index()].incr();
        self.trace(TraceEvent::Reject { reason });
    }

    fn cac_release(&mut self) {
        self.metrics.cac_release.incr();
        self.trace(TraceEvent::Release);
    }

    fn fault_injected(&mut self, code: u8, port: u16, detail: u32) {
        self.metrics.fault_injected.incr();
        self.trace(TraceEvent::Fault { code, port, detail });
    }

    #[inline]
    fn fault_blocked(&mut self, vl: u8) {
        self.metrics.fault_blocked.lane(vl).incr();
    }

    #[inline]
    fn schedule_invalidated(&mut self) {
        self.metrics.schedule_invalidations.incr();
    }

    #[inline]
    fn schedule_compiled(&mut self) {
        self.metrics.schedule_compiles.incr();
    }

    fn recovery_repair(&mut self, evicted: u64) {
        self.metrics.recovery_repairs.incr();
        self.metrics.recovery_evicted.add(evicted);
        self.trace(TraceEvent::Fault {
            code: crate::trace::fault_code::RECOVERY_REPAIR,
            port: 0,
            detail: u32::try_from(evicted).unwrap_or(u32::MAX),
        });
    }

    fn recovery_reinstall(&mut self) {
        self.metrics.recovery_reinstalls.incr();
        self.trace(TraceEvent::Fault {
            code: crate::trace::fault_code::RECOVERY_REINSTALL,
            port: 0,
            detail: 0,
        });
    }

    fn recovery_retry(&mut self, backoff_cycles: u64) {
        self.metrics.recovery_retries.incr();
        self.metrics.recovery_backoff_cycles.observe(backoff_cycles);
        self.trace(TraceEvent::Fault {
            code: crate::trace::fault_code::RECOVERY_RETRY,
            port: 0,
            detail: u32::try_from(backoff_cycles).unwrap_or(u32::MAX),
        });
    }

    fn recovery_degraded(&mut self) {
        self.metrics.recovery_degraded.incr();
        self.trace(TraceEvent::Fault {
            code: crate::trace::fault_code::RECOVERY_DEGRADED,
            port: 0,
            detail: 0,
        });
    }

    #[inline]
    fn serve_shard_admit(&mut self, shard: u8) {
        self.metrics.serve_shard_admit.lane(shard).incr();
    }

    #[inline]
    fn serve_shard_reject(&mut self, shard: u8) {
        self.metrics.serve_shard_reject.lane(shard).incr();
    }

    #[inline]
    fn serve_shard_rollback(&mut self, shard: u8) {
        self.metrics.serve_shard_rollback.lane(shard).incr();
    }

    #[inline]
    fn serve_queue_depth(&mut self, depth: u64) {
        self.metrics.serve_queue_depth.observe(depth);
    }

    #[inline]
    fn serve_batch_latency(&mut self, ticks: u64) {
        self.metrics.serve_batch_latency.observe(ticks);
    }

    fn serve_crash(&mut self, shard: u8) {
        self.metrics.serve_crash.lane(shard).incr();
        self.trace(TraceEvent::Serve {
            code: crate::trace::serve_code::CRASH,
            shard,
            detail: 0,
        });
    }

    fn serve_journal_replay(&mut self, shard: u8, records: u64) {
        self.metrics.serve_journal_replay.lane(shard).add(records);
        self.trace(TraceEvent::Serve {
            code: crate::trace::serve_code::JOURNAL_REPLAY,
            shard,
            detail: u32::try_from(records).unwrap_or(u32::MAX),
        });
    }

    fn serve_timeout(&mut self, shard: u8, backoff: u64) {
        self.metrics.serve_timeout.lane(shard).incr();
        self.trace(TraceEvent::Serve {
            code: crate::trace::serve_code::TIMEOUT,
            shard,
            detail: u32::try_from(backoff).unwrap_or(u32::MAX),
        });
    }

    fn serve_shed(&mut self, rung: u8) {
        self.metrics.serve_shed[usize::from(rung.min(1))].incr();
        self.trace(TraceEvent::Serve {
            code: crate::trace::serve_code::SHED,
            shard: 0,
            detail: u32::from(rung),
        });
    }

    #[inline]
    fn request_stage(&mut self, rid: u32, stage: u8, shard: u8, path: u8) {
        self.trace(TraceEvent::Request {
            rid,
            stage,
            shard,
            path,
        });
    }

    #[inline]
    fn span_begin(&mut self, name: &'static str) {
        if let Some(s) = self.spans.as_mut() {
            s.begin(name);
        }
    }

    #[inline]
    fn span_end(&mut self, name: &'static str) {
        if let Some(s) = self.spans.as_mut() {
            s.end(name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_inert() {
        let mut r = NullRecorder;
        r.tick(5);
        r.alloc_probe(true);
        r.arb_grant(3, 256, ServedKind::High);
        r.cac_reject(RejectKind::CapacityExceeded);
        // Nothing to assert — the point is it compiles to nothing and
        // panics never.
    }

    #[test]
    fn obs_recorder_updates_metrics_and_trace() {
        let mut r = ObsRecorder::with_tracer(8);
        r.tick(100);
        r.alloc_probe(true);
        r.alloc_probe(false);
        r.alloc_select(2, true);
        r.arb_grant(3, 256, ServedKind::High);
        r.arb_weight_exhausted(3);
        r.arb_hol_stall(1);
        r.arb_queue_depth(4);
        r.cac_admit(2);
        r.cac_reject(RejectKind::NoFreeSequence);
        r.cac_release();

        let m = &r.metrics;
        assert_eq!(m.alloc_probe.get(), 2);
        assert_eq!(m.alloc_probe_rejected.get(), 1);
        assert_eq!(m.alloc_probe_depth.count(), 1);
        assert_eq!(m.arb_grant.0[3].get(), 1);
        assert_eq!(m.arb_bytes.0[3].get(), 256);
        assert_eq!(m.arb_high_bytes.get(), 256);
        assert_eq!(m.arb_weight_exhausted.0[3].get(), 1);
        assert_eq!(m.arb_hol_stall.0[1].get(), 1);
        assert_eq!(m.arb_queue_depth.count(), 1);
        assert_eq!(m.cac_admit.0[2].get(), 1);
        assert_eq!(m.cac_reject[0].get(), 1);
        assert_eq!(m.cac_release.get(), 1);

        let records = r
            .tracer
            .as_ref()
            .map(RingTracer::records)
            .unwrap_or_default();
        assert!(!records.is_empty());
        assert!(records.iter().all(|(t, _)| *t == 100));
    }

    #[test]
    fn fault_and_recovery_hooks_update_metrics_and_trace() {
        use crate::trace::fault_code;
        let mut r = ObsRecorder::with_tracer(16);
        r.tick(42);
        r.fault_injected(fault_code::LINK_DOWN, 3, 0);
        r.fault_blocked(5);
        r.recovery_repair(4);
        r.recovery_reinstall();
        r.recovery_retry(256);
        r.recovery_degraded();

        let m = &r.metrics;
        assert_eq!(m.fault_injected.get(), 1);
        assert_eq!(m.fault_blocked.0[5].get(), 1);
        assert_eq!(m.recovery_repairs.get(), 1);
        assert_eq!(m.recovery_evicted.get(), 4);
        assert_eq!(m.recovery_reinstalls.get(), 1);
        assert_eq!(m.recovery_retries.get(), 1);
        assert_eq!(m.recovery_degraded.get(), 1);
        assert_eq!(m.recovery_backoff_cycles.count(), 1);
        assert_eq!(m.recovery_backoff_cycles.sum(), 256);

        let records = r.tracer.as_ref().map(RingTracer::records).unwrap();
        // fault_blocked is metrics-only; the other five hooks trace.
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|(t, _)| *t == 42));
        assert!(matches!(
            records[0].1,
            TraceEvent::Fault {
                code: fault_code::LINK_DOWN,
                port: 3,
                detail: 0
            }
        ));
    }

    #[test]
    fn sim_event_hook_counts_and_observes_depth() {
        let mut r = ObsRecorder::new();
        r.sim_event(3);
        r.sim_event(0);
        assert_eq!(r.metrics.sim_events.get(), 2);
        assert_eq!(r.metrics.sim_event_queue_depth.count(), 2);
        assert_eq!(r.metrics.sim_event_queue_depth.sum(), 3);
    }

    #[test]
    fn recorder_merge_combines_metrics_and_keeps_traces_separate() {
        let mut a = ObsRecorder::with_tracer(4);
        a.tick(10);
        a.arb_grant(1, 100, ServedKind::High);
        let mut b = ObsRecorder::with_tracer(4);
        b.tick(20);
        b.arb_grant(1, 50, ServedKind::Low);
        b.arb_grant(2, 25, ServedKind::High);
        a.merge(&b);
        assert_eq!(a.metrics.arb_bytes.0[1].get(), 150);
        assert_eq!(a.metrics.arb_bytes.0[2].get(), 25);
        assert_eq!(a.now(), 20);
        // The target's own trace ring is untouched by the merge.
        let records = a.tracer.as_ref().map(RingTracer::records).unwrap();
        assert_eq!(records.len(), 1);
    }

    #[test]
    fn span_hooks_record_only_when_enabled() {
        let mut plain = ObsRecorder::new();
        plain.span_begin("x");
        plain.span_end("x");
        assert!(plain.spans.is_none());

        let mut prof = ObsRecorder::with_spans(8);
        prof.span_begin("alloc.select");
        prof.span_end("alloc.select");
        let spans = prof.spans.as_ref().expect("span recorder installed");
        assert_eq!(spans.len(), 2);
        // Span counts never leak into metrics implicitly.
        assert_eq!(prof.metrics.span_records.get(), 0);
    }

    #[test]
    fn merge_unions_span_rings_when_both_present() {
        let mut a = ObsRecorder::with_spans(8);
        a.span_begin("main");
        a.span_end("main");
        let epoch = a.spans.as_ref().map(|s| s.epoch()).expect("spans on");
        let mut b = ObsRecorder {
            spans: Some(crate::span::SpanRecorder::with_epoch(8, epoch)),
            ..ObsRecorder::default()
        };
        b.span_begin("worker");
        b.span_end("worker");
        a.merge(&b);
        assert_eq!(
            a.spans.as_ref().map(crate::span::SpanRecorder::len),
            Some(4)
        );
        // Merging into a span-less recorder is a no-op, not an error.
        let mut c = ObsRecorder::new();
        c.merge(&a);
        assert!(c.spans.is_none());
    }

    #[test]
    fn with_timeline_rolls_windows_on_tick() {
        let mut r = ObsRecorder::with_timeline(10);
        r.tick(0);
        r.sim_event(1);
        r.tick(12); // crosses into window 1: closes window 0
        r.sim_event(0);
        r.finish_timeline();
        let tl = r.timeline.as_ref().expect("timeline installed");
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.windows()[&0].sim_events.get(), 1);
        assert_eq!(tl.windows()[&1].sim_events.get(), 1);
        assert_eq!(r.metrics.timeline_windows.get(), 2);
        assert_eq!(r.metrics.sim_events.get(), 2);
    }

    #[test]
    fn request_stage_hook_traces_without_metrics() {
        let mut r = ObsRecorder::with_tracer(4);
        r.tick(7);
        r.request_stage(5, crate::trace::request_stage::VOTE, 2, 1);
        let records = r.tracer.as_ref().map(RingTracer::records).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(
            records[0],
            (
                7,
                TraceEvent::Request {
                    rid: 5,
                    stage: crate::trace::request_stage::VOTE,
                    shard: 2,
                    path: 1
                }
            )
        );
        assert!(r.metrics.snapshot().is_empty(), "hook is metric-free");
    }

    #[test]
    fn merge_combines_timelines_window_wise() {
        let mut a = ObsRecorder::with_timeline(10);
        a.tick(0);
        a.cac_release();
        a.tick(11);
        a.finish_timeline();
        let mut b = ObsRecorder::with_timeline(10);
        b.tick(0);
        b.cac_admit(1);
        b.tick(11);
        b.finish_timeline();
        a.merge(&b);
        let tl = a.timeline.as_ref().unwrap();
        assert_eq!(tl.windows()[&0].cac_release.get(), 1);
        assert_eq!(tl.windows()[&0].cac_admit.0[1].get(), 1);
        // Merging into a timeline-less recorder keeps it timeline-less.
        let mut c = ObsRecorder::new();
        c.merge(&a);
        assert!(c.timeline.is_none());
    }

    #[test]
    fn codes_roundtrip() {
        for k in [ServedKind::High, ServedKind::Low, ServedKind::Management] {
            assert_eq!(ServedKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ServedKind::from_code(9), None);
        for k in [
            RejectKind::NoFreeSequence,
            RejectKind::CapacityExceeded,
            RejectKind::RequestTooLarge,
            RejectKind::Invalid,
            RejectKind::Overloaded,
        ] {
            assert_eq!(RejectKind::from_code(k.index() as u16), Some(k));
        }
        assert_eq!(RejectKind::from_code(7), None);
    }
}
