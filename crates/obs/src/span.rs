//! Zero-dependency span profiler: begin/end records with a thread id
//! and a monotonic wall clock, held in a bounded ring like
//! [`crate::trace::RingTracer`].
//!
//! Spans answer the question the simulator-cycle tracer cannot: where
//! does the *wall clock* go — harness workers, sweep chunks, the sim
//! event loop, allocator selects, CAC admissions. Span timestamps are
//! nanoseconds since the recorder's epoch ([`std::time::Instant`], so
//! they never go backwards), and every record carries the hash of the
//! recording thread's id so records from several workers can be merged
//! onto one multi-track timeline (see [`crate::perfetto`]).
//!
//! Recording is deliberately outside the deterministic contract: span
//! data never feeds back into simulation state, so attaching a span
//! recorder cannot change a delivery digest. Span *counts* reach the
//! metrics registry only through the explicit
//! [`SpanRecorder::export_into`] call, never implicitly, so the
//! thread-count-invariant merge of `tests/parallel_determinism.rs` is
//! unaffected.

use std::hash::{Hash, Hasher};
use std::time::Instant;

/// Whether a record opens or closes a span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpanPhase {
    /// The span started.
    Begin,
    /// The span ended.
    End,
}

/// One span record: a begin or end mark on one thread's timeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// Span name (a static label such as `"sim.run_until"`).
    pub name: &'static str,
    /// Hash of the recording thread's [`std::thread::ThreadId`] —
    /// stable within a process, used as the timeline track id.
    pub tid: u64,
    /// Nanoseconds since the recorder's epoch.
    pub ts_ns: u64,
    /// Begin or end.
    pub phase: SpanPhase,
}

/// A bounded ring of [`SpanEvent`]s with a shared monotonic epoch.
///
/// When full, pushing overwrites the oldest record and bumps
/// [`SpanRecorder::dropped`], exactly like the sim-event
/// [`crate::trace::RingTracer`].
#[derive(Clone, Debug)]
pub struct SpanRecorder {
    epoch: Instant,
    buf: Vec<SpanEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

fn current_tid() -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

impl SpanRecorder {
    /// A recorder holding at most `capacity` records (minimum 2, so one
    /// begin/end pair always fits), with its epoch set to *now*.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_epoch(capacity, Instant::now())
    }

    /// A recorder with an explicit epoch. Workers that will be merged
    /// onto one timeline should share one epoch so their tracks align.
    #[must_use]
    pub fn with_epoch(capacity: usize, epoch: Instant) -> Self {
        SpanRecorder {
            epoch,
            buf: Vec::new(),
            capacity: capacity.max(2),
            head: 0,
            dropped: 0,
        }
    }

    /// The recorder's epoch (for spawning aligned siblings).
    #[must_use]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Opens a span named `name` on the calling thread, stamped with
    /// the monotonic clock.
    pub fn begin(&mut self, name: &'static str) {
        let ts_ns = self.now_ns();
        self.push_raw(name, current_tid(), ts_ns, SpanPhase::Begin);
    }

    /// Closes the span named `name` on the calling thread.
    pub fn end(&mut self, name: &'static str) {
        let ts_ns = self.now_ns();
        self.push_raw(name, current_tid(), ts_ns, SpanPhase::End);
    }

    /// Nanoseconds elapsed since the epoch (clamped to `u64`).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Appends a fully explicit record — the seam for tests and golden
    /// fixtures that need a deterministic timeline.
    pub fn push_raw(&mut self, name: &'static str, tid: u64, ts_ns: u64, phase: SpanPhase) {
        let rec = SpanEvent {
            name,
            tid,
            ts_ns,
            phase,
        };
        if self.buf.len() < self.capacity {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.capacity;
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Records in arrival order (oldest first). Within one thread this
    /// is chronological; across threads the Perfetto exporter sorts.
    #[must_use]
    pub fn records(&self) -> Vec<SpanEvent> {
        let (tail, head) = self.buf.split_at(self.head.min(self.buf.len()));
        head.iter().chain(tail.iter()).copied().collect()
    }

    /// Appends another recorder's records (oldest first), respecting
    /// this ring's capacity. Unlike the sim-event tracer, merging span
    /// rings is sound: every record carries its thread id, so a union
    /// is a valid multi-track timeline rather than a fabricated
    /// interleaving. Both recorders should share an epoch.
    pub fn merge(&mut self, other: &SpanRecorder) {
        self.dropped = self.dropped.saturating_add(other.dropped);
        for r in other.records() {
            self.push_raw(r.name, r.tid, r.ts_ns, r.phase);
        }
    }

    /// Exports span bookkeeping into a metrics registry
    /// (`span_records_total`, `span_dropped_total`). Explicit by
    /// design: spans are wall-clock data, so their counts enter the
    /// deterministic metrics merge only when a caller opts in.
    pub fn export_into(&self, metrics: &mut crate::metrics::Metrics) {
        metrics.span_records.add(self.buf.len() as u64);
        metrics.span_dropped.add(self.dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_end_are_monotone_on_one_thread() {
        let mut s = SpanRecorder::new(16);
        s.begin("outer");
        s.begin("inner");
        s.end("inner");
        s.end("outer");
        let recs = s.records();
        assert_eq!(recs.len(), 4);
        assert!(recs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert!(recs.iter().all(|r| r.tid == recs[0].tid));
        assert_eq!(recs[0].phase, SpanPhase::Begin);
        assert_eq!(recs[3].phase, SpanPhase::End);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut s = SpanRecorder::new(3);
        for i in 0..5u64 {
            s.push_raw("x", 1, i, SpanPhase::Begin);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let ts: Vec<u64> = s.records().iter().map(|r| r.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn merge_unions_tracks_and_sums_drops() {
        let epoch = Instant::now();
        let mut a = SpanRecorder::with_epoch(8, epoch);
        a.push_raw("a", 1, 10, SpanPhase::Begin);
        a.push_raw("a", 1, 20, SpanPhase::End);
        let mut b = SpanRecorder::with_epoch(2, epoch);
        b.push_raw("b", 2, 5, SpanPhase::Begin);
        b.push_raw("b", 2, 15, SpanPhase::End);
        b.push_raw("b2", 2, 25, SpanPhase::Begin);
        assert_eq!(b.dropped(), 1);
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.dropped(), 1);
        assert!(a.records().iter().any(|r| r.tid == 2));
    }

    #[test]
    fn export_feeds_span_metrics() {
        let mut s = SpanRecorder::new(4);
        s.begin("t");
        s.end("t");
        let mut m = crate::metrics::Metrics::new();
        s.export_into(&mut m);
        assert_eq!(m.span_records.get(), 2);
        assert_eq!(m.span_dropped.get(), 0);
    }

    #[test]
    fn threads_get_distinct_track_ids() {
        let here = current_tid();
        let there = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(here, there);
    }
}
