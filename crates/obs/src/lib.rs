//! # iba-obs — observability for the InfiniBand QoS workspace
//!
//! A zero-dependency, allocation-free-on-the-hot-path observability
//! layer shared by every crate in the workspace:
//!
//! * [`metrics`] — monotonic saturating counters, gauges and
//!   fixed-bucket histograms with per-VL / per-SL dimensions, collected
//!   in one flat [`metrics::Metrics`] registry (a plain struct: no maps,
//!   no heap traffic while recording);
//! * [`recorder`] — the [`recorder::Recorder`] trait that the hot paths
//!   (`iba-core` allocator, `iba-sim` arbiter/ports, `iba-qos`
//!   admission control) call into. [`recorder::NullRecorder`]
//!   monomorphizes every hook to nothing, so the non-observed build
//!   keeps the exact pre-instrumentation fast path;
//! * [`trace`] — a bounded ring-buffer event tracer with a compact
//!   16-byte binary record format and a text decoder (driven by
//!   `ibaqos trace`);
//! * [`report`] — renderers: human-readable metric reports
//!   (`ibaqos report`) and the machine-readable `BENCH_*.json` schema
//!   written by the bench smoke tier;
//! * [`json`] — a minimal JSON value type, serializer and strict
//!   parser so the workspace stays dependency-free;
//! * [`audit`] — the [`audit::GuaranteeAuditor`], a [`recorder::Recorder`]
//!   that checks the paper's per-VL `d`·slot service guarantee live
//!   against the observed inter-grant gaps (driven by `ibaqos audit`);
//! * [`span`] — the [`span::SpanRecorder`] wall-clock profiler:
//!   begin/end records with thread ids in a bounded ring;
//! * [`perfetto`] — merges span records and sim trace events into a
//!   Perfetto/Chrome trace-event JSON timeline.
//!
//! The full list of metric names, dimensions and units is the
//! **metrics contract** in `METRICS.md` at the repository root;
//! `cargo xtask check` fails when a name in
//! [`metrics::METRIC_NAMES`] is missing from that document.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod recorder;
pub mod report;
pub mod span;
pub mod trace;

pub use audit::{GuaranteeAuditor, LaneAudit, LaneBudget};
pub use json::Json;
pub use metrics::{
    Counter, Dim, Gauge, Histogram, Metrics, PerLane, Sample, SampleValue, METRIC_NAMES,
};
pub use perfetto::perfetto_trace;
pub use recorder::{NullRecorder, ObsRecorder, Recorder, RejectKind, ServedKind};
pub use report::{bench_json, render_metrics, vl_shares, BenchRecord, VlShare};
pub use span::{SpanEvent, SpanPhase, SpanRecorder};
pub use trace::{fault_code, RingTracer, TraceEvent, RECORD_BYTES};
