//! # iba-obs — observability for the InfiniBand QoS workspace
//!
//! A zero-dependency, allocation-free-on-the-hot-path observability
//! layer shared by every crate in the workspace:
//!
//! * [`metrics`] — monotonic saturating counters, gauges and
//!   fixed-bucket histograms with per-VL / per-SL dimensions, collected
//!   in one flat [`metrics::Metrics`] registry (a plain struct: no maps,
//!   no heap traffic while recording);
//! * [`recorder`] — the [`recorder::Recorder`] trait that the hot paths
//!   (`iba-core` allocator, `iba-sim` arbiter/ports, `iba-qos`
//!   admission control) call into. [`recorder::NullRecorder`]
//!   monomorphizes every hook to nothing, so the non-observed build
//!   keeps the exact pre-instrumentation fast path;
//! * [`trace`] — a bounded ring-buffer event tracer with a compact
//!   16-byte binary record format and a text decoder (driven by
//!   `ibaqos trace`);
//! * [`report`] — renderers: human-readable metric reports
//!   (`ibaqos report`) and the machine-readable `BENCH_*.json` schema
//!   written by the bench smoke tier;
//! * [`json`] — a minimal JSON value type, serializer and strict
//!   parser so the workspace stays dependency-free;
//! * [`audit`] — the [`audit::GuaranteeAuditor`], a [`recorder::Recorder`]
//!   that checks the paper's per-VL `d`·slot service guarantee live
//!   against the observed inter-grant gaps (driven by `ibaqos audit`);
//! * [`span`] — the [`span::SpanRecorder`] wall-clock profiler:
//!   begin/end records with thread ids in a bounded ring;
//! * [`perfetto`] — merges span records, sim trace events and
//!   per-request causal traces into a Perfetto/Chrome trace-event
//!   JSON timeline;
//! * [`timeline`] — the windowed [`timeline::Timeline`] aggregator:
//!   delta-encoded per-window metrics keyed by absolute window index,
//!   merged commutatively so `TIMELINE.json` is byte-identical at any
//!   `IBA_THREADS`/shard count (driven by `ibaqos timeline`);
//! * [`slo`] — a declarative SLO engine (`p99(..) <= N`,
//!   `rate(..) == 0`, burn-rate accounting) evaluated deterministically
//!   over timeline windows, gating `ibaqos serve`/`audit`/`chaos` via
//!   `--slo`;
//! * [`prom`] — Prometheus-style text exposition of a metrics
//!   snapshot (`ibaqos report --prom`);
//! * [`request`] — reassembles ring-trace request records into
//!   causally ordered per-request span trees;
//! * [`flight`] — the flight recorder: renders a post-mortem bundle
//!   (trace tail, timeline tail, request spans, SLO report) when a
//!   run fails.
//!
//! The full list of metric names, dimensions and units is the
//! **metrics contract** in `METRICS.md` at the repository root;
//! `cargo xtask check` fails when a name in
//! [`metrics::METRIC_NAMES`] is missing from that document.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod prom;
pub mod recorder;
pub mod report;
pub mod request;
pub mod slo;
pub mod span;
pub mod timeline;
pub mod trace;

pub use audit::{GuaranteeAuditor, LaneAudit, LaneBudget};
pub use flight::{build as flight_build, FlightInput};
pub use json::Json;
pub use metrics::{
    Counter, Dim, Gauge, Histogram, Metrics, PerLane, Sample, SampleValue, METRIC_NAMES,
};
pub use perfetto::{perfetto_trace, perfetto_trace_full};
pub use prom::render_prom;
pub use recorder::{NullRecorder, ObsRecorder, Recorder, RejectKind, ServedKind};
pub use report::{bench_json, render_metrics, vl_shares, BenchRecord, VlShare};
pub use request::{reassemble, RequestSpan, StageRecord};
pub use slo::{SloClause, SloReport, SloSpec};
pub use span::{SpanEvent, SpanPhase, SpanRecorder};
pub use timeline::{Timeline, DEFAULT_WINDOW_LEN, TIMELINE_SCHEMA};
pub use trace::{fault_code, request_stage, serve_code, RingTracer, TraceEvent, RECORD_BYTES};
