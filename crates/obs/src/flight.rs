//! The flight recorder: a post-mortem bundle built when a run fails.
//!
//! On any SLO breach or FAIL verdict, the CLI asks this module for a
//! bundle — a list of `(file name, contents)` pairs — and writes it
//! under a debug directory (`--flight-dir`), which CI uploads as an
//! artifact. Building the bundle is pure rendering over state the run
//! already holds (metrics registry, timeline, trace ring, request
//! records, SLO report), so the recorder costs nothing until the
//! moment a failure needs explaining.
//!
//! Bundle layout (files absent when the run had no such state):
//!
//! | file                | contents                                    |
//! |---------------------|---------------------------------------------|
//! | `MANIFEST.txt`      | reason, schema and the file list            |
//! | `metrics.txt`       | final cumulative snapshot (text report)     |
//! | `metrics.prom`      | the same snapshot, Prometheus exposition    |
//! | `timeline_tail.json`| the last K closed windows, `TIMELINE.json` schema |
//! | `trace_tail.txt`    | decoded tail of the ring tracer             |
//! | `requests.txt`      | reassembled per-request span trees          |
//! | `slo.txt`           | the SLO report that triggered the dump      |

use crate::metrics::Metrics;
use crate::request;
use crate::slo::SloReport;
use crate::timeline::Timeline;
use crate::trace::{RingTracer, TraceEvent};

/// Everything the bundle builder may draw from. All fields except the
/// reason and the metrics registry are optional — the builder emits
/// only the files whose inputs are present.
pub struct FlightInput<'a> {
    /// Why the bundle is being written (first line of the manifest).
    pub reason: &'a str,
    /// The run's final cumulative metrics registry.
    pub metrics: &'a Metrics,
    /// The run's timeline, when one was aggregated.
    pub timeline: Option<&'a Timeline>,
    /// The run's ring tracer, when tracing was enabled.
    pub tracer: Option<&'a RingTracer>,
    /// Drained per-request trace records (empty when none).
    pub requests: &'a [(u64, TraceEvent)],
    /// The SLO report that triggered the dump, if SLO gating ran.
    pub slo: Option<&'a SloReport>,
    /// How many trailing timeline windows to keep (0 means all).
    pub tail_windows: usize,
}

/// Builds the bundle: deterministic `(file name, contents)` pairs,
/// manifest first.
#[must_use]
pub fn build(input: &FlightInput<'_>) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = Vec::new();

    files.push((
        "metrics.txt".into(),
        crate::report::render_metrics(input.metrics),
    ));
    files.push((
        "metrics.prom".into(),
        crate::prom::render_prom(input.metrics),
    ));

    if let Some(tl) = input.timeline {
        files.push((
            "timeline_tail.json".into(),
            tl.tail(input.tail_windows).to_json_string(),
        ));
    }
    if let Some(tracer) = input.tracer {
        let lines = tracer.render(0);
        let mut body = String::new();
        if lines.is_empty() {
            body.push_str("no trace records\n");
        } else {
            for l in &lines {
                body.push_str(l);
                body.push('\n');
            }
        }
        files.push(("trace_tail.txt".into(), body));
    }
    if !input.requests.is_empty() {
        let spans = request::reassemble(input.requests);
        files.push(("requests.txt".into(), request::render_all(&spans)));
    }
    if let Some(slo) = input.slo {
        files.push(("slo.txt".into(), slo.render()));
    }

    let mut manifest = format!(
        "flight recorder bundle\nreason: {}\nschema: iba.flight.v1\nfiles:\n",
        input.reason
    );
    for (name, _) in &files {
        manifest.push_str(&format!("  {name}\n"));
    }
    files.insert(0, ("MANIFEST.txt".into(), manifest));
    files
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::SloSpec;
    use crate::trace::request_stage;

    fn sample_input() -> (Metrics, Timeline, RingTracer, Vec<(u64, TraceEvent)>) {
        let mut m = Metrics::new();
        let mut tl = Timeline::new(10);
        tl.tick(0, &mut m);
        m.sim_events.add(4);
        m.cac_admit.lane(1).incr();
        tl.tick(12, &mut m);
        m.sim_events.add(2);
        tl.finish(&mut m);
        let mut tracer = RingTracer::new(8);
        tracer.push(3, TraceEvent::Release);
        let requests = vec![
            (
                1,
                TraceEvent::Request {
                    rid: 0,
                    stage: request_stage::DISPATCH,
                    shard: 0,
                    path: request_stage::NO_PATH,
                },
            ),
            (
                2,
                TraceEvent::Request {
                    rid: 0,
                    stage: request_stage::COMMIT,
                    shard: 1,
                    path: 0,
                },
            ),
        ];
        (m, tl, tracer, requests)
    }

    #[test]
    fn bundle_contains_manifest_and_all_sections() {
        let (m, tl, tracer, requests) = sample_input();
        let spec = SloSpec::parse("rate(sim_events_total) == 0").unwrap();
        let windows: Vec<(u64, &Metrics)> = tl.windows().iter().map(|(i, w)| (*i, w)).collect();
        let report = spec.evaluate(&windows);
        assert!(!report.pass);

        let files = build(&FlightInput {
            reason: "slo breach: rate(sim_events_total) == 0",
            metrics: &m,
            timeline: Some(&tl),
            tracer: Some(&tracer),
            requests: &requests,
            slo: Some(&report),
            tail_windows: 0,
        });
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "MANIFEST.txt",
                "metrics.txt",
                "metrics.prom",
                "timeline_tail.json",
                "trace_tail.txt",
                "requests.txt",
                "slo.txt"
            ]
        );
        let manifest = &files[0].1;
        assert!(manifest.starts_with("flight recorder bundle\nreason: slo breach"));
        assert!(manifest.contains("  requests.txt\n"));
        let requests_txt = &files[5].1;
        assert!(requests_txt.contains("request rid=0 outcome=commit"));
        let slo_txt = &files[6].1;
        assert!(slo_txt.starts_with("slo: verdict=FAIL"));
    }

    #[test]
    fn optional_sections_are_omitted() {
        let m = Metrics::new();
        let files = build(&FlightInput {
            reason: "verdict FAIL",
            metrics: &m,
            timeline: None,
            tracer: None,
            requests: &[],
            slo: None,
            tail_windows: 4,
        });
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["MANIFEST.txt", "metrics.txt", "metrics.prom"]);
    }

    #[test]
    fn timeline_tail_keeps_only_the_last_windows() {
        let mut m = Metrics::new();
        let mut tl = Timeline::new(10);
        tl.tick(0, &mut m);
        for w in 1..=5u64 {
            m.sim_events.add(w);
            tl.tick(w * 10 + 1, &mut m);
        }
        tl.finish(&mut m);
        assert_eq!(tl.len(), 6);
        let files = build(&FlightInput {
            reason: "tail test",
            metrics: &m,
            timeline: Some(&tl),
            tracer: None,
            requests: &[],
            slo: None,
            tail_windows: 2,
        });
        let tail = files
            .iter()
            .find(|(n, _)| n == "timeline_tail.json")
            .map(|(_, c)| c.as_str())
            .unwrap();
        let parsed = crate::json::Json::parse(tail).unwrap();
        assert_eq!(
            parsed.get("window_count").and_then(|j| j.as_f64()),
            Some(2.0)
        );
        // The kept windows are the newest ones.
        assert!(tail.contains("\"index\": 4"));
        assert!(tail.contains("\"index\": 5"));
        assert!(!tail.contains("\"index\": 1"));
    }
}
