//! Sample series: exact quantiles and fixed-width time binning, used by
//! ad-hoc analyses and the CLI reports.

/// A growable sample series with exact (sort-based) quantiles.
#[derive(Clone, Debug, Default)]
pub struct Series {
    samples: Vec<f64>,
    sorted: bool,
}

impl Series {
    /// Empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// No samples yet?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation between
    /// order statistics (`None` when empty).
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
        let n = self.samples.len();
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Convenience: median.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Convenience: the (p50, p95, p99, max) summary used in reports.
    pub fn summary(&mut self) -> Option<(f64, f64, f64, f64)> {
        Some((
            self.quantile(0.5)?,
            self.quantile(0.95)?,
            self.quantile(0.99)?,
            self.quantile(1.0)?,
        ))
    }
}

/// Fixed-width time bins accumulating a value per bin (e.g. delivered
/// bytes per interval, to plot throughput over time).
#[derive(Clone, Debug)]
pub struct TimeBins {
    width: u64,
    bins: Vec<f64>,
}

impl TimeBins {
    /// Bins of `width` time units.
    #[must_use]
    pub fn new(width: u64) -> Self {
        assert!(width > 0);
        TimeBins {
            width,
            bins: Vec::new(),
        }
    }

    /// Adds `value` at time `t`.
    pub fn add(&mut self, t: u64, value: f64) {
        let idx = (t / self.width) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Bin width.
    #[must_use]
    pub fn width(&self) -> u64 {
        self.width
    }

    /// The accumulated bins (last bin may be partial).
    #[must_use]
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// Per-bin rates: value divided by the bin width.
    #[must_use]
    pub fn rates(&self) -> Vec<f64> {
        self.bins.iter().map(|v| v / self.width as f64).collect()
    }

    /// Coefficient of variation of the complete bins (excludes the last,
    /// possibly partial, bin) — a stability metric for steady states.
    #[must_use]
    pub fn rate_cv(&self) -> Option<f64> {
        if self.bins.len() < 3 {
            return None;
        }
        let full = &self.bins[..self.bins.len() - 1];
        let mean = full.iter().sum::<f64>() / full.len() as f64;
        if mean == 0.0 {
            return None;
        }
        let var = full.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / full.len() as f64;
        Some(var.sqrt() / mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_on_known_data() {
        let mut s = Series::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.median(), Some(3.0));
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.quantile(1.0), Some(5.0));
        assert_eq!(s.quantile(0.25), Some(2.0));
        // Interpolation between order statistics.
        assert_eq!(s.quantile(0.125), Some(1.5));
    }

    #[test]
    fn empty_series_yields_none() {
        let mut s = Series::new();
        assert!(s.mean().is_none());
        assert!(s.median().is_none());
        assert!(s.summary().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn pushes_after_quantile_resort() {
        let mut s = Series::new();
        s.push(10.0);
        assert_eq!(s.median(), Some(10.0));
        s.push(0.0);
        assert_eq!(s.median(), Some(5.0));
    }

    #[test]
    fn summary_is_ordered() {
        let mut s = Series::new();
        for i in 0..1000 {
            s.push(f64::from(i));
        }
        let (p50, p95, p99, max) = s.summary().unwrap();
        assert!(p50 < p95 && p95 < p99 && p99 <= max);
        assert_eq!(max, 999.0);
    }

    #[test]
    fn time_bins_accumulate() {
        let mut b = TimeBins::new(100);
        b.add(0, 5.0);
        b.add(99, 5.0);
        b.add(100, 7.0);
        b.add(350, 1.0);
        assert_eq!(b.bins(), &[10.0, 7.0, 0.0, 1.0]);
        assert_eq!(b.rates(), vec![0.1, 0.07, 0.0, 0.01]);
    }

    #[test]
    fn cv_detects_steady_vs_bursty() {
        let mut steady = TimeBins::new(10);
        let mut bursty = TimeBins::new(10);
        for k in 0..20 {
            steady.add(k * 10, 5.0);
            bursty.add(k * 10, if k % 2 == 0 { 10.0 } else { 0.0 });
        }
        assert!(steady.rate_cv().unwrap() < 0.01);
        assert!(bursty.rate_cv().unwrap() > 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_range_checked() {
        let mut s = Series::new();
        s.push(1.0);
        let _ = s.quantile(1.5);
    }
}
