//! Interarrival jitter histograms (the paper's Figure 5).
//!
//! For each connection the deviation of every interarrival gap from the
//! nominal interarrival time (IAT) is binned into intervals expressed in
//! fractions of the IAT: `… [-IAT/4, -IAT/8), [-IAT/8, +IAT/8], (+IAT/8,
//! +IAT/4] …` with open-ended bins beyond ±IAT.

/// Bin edges in fractions of the IAT (symmetric around zero); the bins
/// are: `<= -1`, `(-1, -3/4]`, `(-3/4, -1/2]`, `(-1/2, -1/4]`,
/// `(-1/4, -1/8]`, `(-1/8, +1/8)` (the central bin), `[+1/8, +1/4)`,
/// `[+1/4, +1/2)`, `[+1/2, +3/4)`, `[+3/4, +1)`, `>= +1`.
pub const JITTER_EDGES: [f64; 10] = [
    -1.0, -0.75, -0.5, -0.25, -0.125, 0.125, 0.25, 0.5, 0.75, 1.0,
];

/// Human-readable labels for the 11 bins.
pub const JITTER_BIN_LABELS: [&str; 11] = [
    "<=-IAT",
    "-3IAT/4",
    "-IAT/2",
    "-IAT/4",
    "-IAT/8",
    "[-IAT/8,+IAT/8]",
    "+IAT/8",
    "+IAT/4",
    "+IAT/2",
    "+3IAT/4",
    ">=+IAT",
];

/// Number of bins.
pub const JITTER_BINS: usize = JITTER_EDGES.len() + 1;

/// Histogram of interarrival deviations for one group.
#[derive(Clone, Debug, Default)]
pub struct JitterHistogram {
    bins: [u64; JITTER_BINS],
    total: u64,
    max_abs_dev: f64,
}

impl JitterHistogram {
    /// Records a gap of `gap` cycles against a nominal `iat`.
    pub fn record(&mut self, gap: u64, iat: u64) {
        assert!(iat > 0);
        let dev = (gap as f64 - iat as f64) / iat as f64;
        self.max_abs_dev = self.max_abs_dev.max(dev.abs());
        let mut bin = JITTER_BINS - 1;
        for (i, &e) in JITTER_EDGES.iter().enumerate() {
            if dev < e || (dev == e && e <= 0.0) {
                bin = i;
                break;
            }
        }
        self.bins[bin] += 1;
        self.total += 1;
    }

    /// Samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest |deviation| / IAT seen.
    #[must_use]
    pub fn max_abs_deviation(&self) -> f64 {
        self.max_abs_dev
    }

    /// Percentage of samples per bin.
    #[must_use]
    pub fn percentages(&self) -> [f64; JITTER_BINS] {
        let mut out = [0.0; JITTER_BINS];
        if self.total == 0 {
            return out;
        }
        for (o, &b) in out.iter_mut().zip(&self.bins) {
            *o = 100.0 * b as f64 / self.total as f64;
        }
        out
    }

    /// Percentage in the central `[-IAT/8, +IAT/8]` bin.
    #[must_use]
    pub fn central_pct(&self) -> f64 {
        self.percentages()[JITTER_BINS / 2]
    }

    /// Whether any sample fell in the open-ended bins beyond ±IAT.
    #[must_use]
    pub fn exceeded_iat(&self) -> bool {
        self.bins[0] > 0 || self.bins[JITTER_BINS - 1] > 0
    }

    /// Merges another histogram.
    pub fn merge(&mut self, other: &JitterHistogram) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.total += other.total;
        self.max_abs_dev = self.max_abs_dev.max(other.max_abs_dev);
    }
}

/// Per-connection jitter tracking: remembers each connection's last
/// arrival and nominal IAT, bins gaps into a per-group histogram.
#[derive(Clone, Debug, Default)]
pub struct JitterCollector {
    /// `last[conn]` = time of the previous arrival.
    last: Vec<Option<u64>>,
    /// `iat[conn]` = nominal interarrival time.
    iat: Vec<u64>,
    /// One histogram per group (e.g. per SL).
    groups: Vec<JitterHistogram>,
}

impl JitterCollector {
    /// Empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a connection with its nominal IAT (cycles).
    pub fn declare(&mut self, conn: usize, iat: u64) {
        if conn >= self.iat.len() {
            self.iat.resize(conn + 1, 0);
            self.last.resize(conn + 1, None);
        }
        self.iat[conn] = iat;
        self.last[conn] = None;
    }

    /// Records an arrival of connection `conn` (grouped under `group`)
    /// at time `now`.
    pub fn record(&mut self, conn: usize, group: usize, now: u64) {
        assert!(conn < self.iat.len(), "connection {conn} not declared");
        if group >= self.groups.len() {
            self.groups.resize(group + 1, JitterHistogram::default());
        }
        if let Some(prev) = self.last[conn] {
            let gap = now.saturating_sub(prev);
            self.groups[group].record(gap, self.iat[conn]);
        }
        self.last[conn] = Some(now);
    }

    /// The histogram of a group.
    #[must_use]
    pub fn group(&self, group: usize) -> Option<&JitterHistogram> {
        self.groups.get(group)
    }

    /// All `(group, histogram)` pairs with samples.
    pub fn groups(&self) -> impl Iterator<Item = (usize, &JitterHistogram)> {
        self.groups
            .iter()
            .enumerate()
            .filter(|(_, g)| g.total() > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_time_arrivals_land_in_centre() {
        let mut h = JitterHistogram::default();
        for gap in [1000u64, 1010, 990, 1120, 880] {
            h.record(gap, 1000); // deviations 0, ±1%, ±12%
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.central_pct(), 100.0);
        assert!(!h.exceeded_iat());
    }

    #[test]
    fn deviations_bin_correctly() {
        let mut h = JitterHistogram::default();
        h.record(2001, 1000); // dev >= +1
        h.record(0, 1000); // dev = -1 (early by a whole IAT)
        h.record(1300, 1000); // +0.3 -> [+1/4, +1/2)
        h.record(700, 1000); // -0.3 -> (-1/2, -1/4]
        let pct = h.percentages();
        assert_eq!(pct[JITTER_BINS - 1], 25.0); // >= +IAT
        assert_eq!(pct[0], 25.0); // <= -IAT
        assert_eq!(pct[7], 25.0); // +IAT/4 bin
        assert_eq!(pct[3], 25.0); // -IAT/4 bin
        assert!(h.exceeded_iat());
    }

    #[test]
    fn collector_tracks_per_connection_gaps() {
        let mut c = JitterCollector::new();
        c.declare(0, 100);
        c.declare(1, 200);
        // Conn 0 arrives at 0, 100, 205 -> gaps 100 (centre), 105 (centre).
        c.record(0, 0, 0);
        c.record(0, 0, 100);
        c.record(0, 0, 205);
        // Conn 1 arrives at 0, 420 -> gap 420, dev +1.1 -> beyond +IAT.
        c.record(1, 1, 0);
        c.record(1, 1, 420);
        assert_eq!(c.group(0).unwrap().total(), 2);
        assert_eq!(c.group(0).unwrap().central_pct(), 100.0);
        assert!(c.group(1).unwrap().exceeded_iat());
        assert_eq!(c.groups().count(), 2);
    }

    #[test]
    fn first_arrival_produces_no_sample() {
        let mut c = JitterCollector::new();
        c.declare(0, 50);
        c.record(0, 0, 10);
        assert!(c.group(0).is_none_or(|g| g.total() == 0));
    }

    #[test]
    fn merge_combines() {
        let mut a = JitterHistogram::default();
        let mut b = JitterHistogram::default();
        a.record(100, 100);
        b.record(300, 100);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!(a.exceeded_iat());
    }
}
