//! Delay-vs-deadline distributions (the paper's Figures 4 and 6).
//!
//! Each connection has its own guaranteed maximum deadline `D`; the
//! figures plot, per service level, the percentage of packets received
//! before a *threshold* expressed as a fraction of `D` — i.e. the CDF
//! of `delay / D` sampled at a fixed set of fractions.

/// The threshold fractions of the deadline at which the CDF is sampled
/// (from very tight, `D/30`, to the deadline itself — matching the
/// paper's log-style threshold axis `D/30 … D/10 … D`).
pub const DEFAULT_THRESHOLDS: [f64; 8] = [
    1.0 / 30.0,
    1.0 / 20.0,
    1.0 / 10.0,
    1.0 / 5.0,
    1.0 / 3.0,
    1.0 / 2.0,
    3.0 / 4.0,
    1.0,
];

/// Accumulated delay distribution of one group (an SL, or a single
/// connection).
#[derive(Clone, Debug)]
pub struct DelayDistribution {
    thresholds: Vec<f64>,
    /// `counts[i]` = packets with `delay <= thresholds[i] * deadline`.
    counts: Vec<u64>,
    total: u64,
    /// Packets that missed even the deadline itself.
    missed: u64,
    max_ratio: f64,
}

impl DelayDistribution {
    /// New distribution sampled at `thresholds` (fractions of deadline,
    /// ascending).
    #[must_use]
    pub fn new(thresholds: &[f64]) -> Self {
        assert!(!thresholds.is_empty());
        assert!(
            thresholds.windows(2).all(|w| w[0] < w[1]),
            "thresholds must ascend"
        );
        DelayDistribution {
            thresholds: thresholds.to_vec(),
            counts: vec![0; thresholds.len()],
            total: 0,
            missed: 0,
            max_ratio: 0.0,
        }
    }

    /// Records one packet with end-to-end `delay` against its
    /// connection's `deadline` (both in cycles).
    pub fn record(&mut self, delay: u64, deadline: u64) {
        assert!(deadline > 0);
        let ratio = delay as f64 / deadline as f64;
        self.total += 1;
        self.max_ratio = self.max_ratio.max(ratio);
        if ratio > 1.0 {
            self.missed += 1;
        }
        for (i, &t) in self.thresholds.iter().enumerate() {
            if ratio <= t {
                self.counts[i] += 1;
            }
        }
    }

    /// The sampled thresholds.
    #[must_use]
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// Packets recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Packets that exceeded their deadline.
    #[must_use]
    pub fn missed(&self) -> u64 {
        self.missed
    }

    /// Largest observed `delay / deadline` ratio.
    #[must_use]
    pub fn max_ratio(&self) -> f64 {
        self.max_ratio
    }

    /// The CDF: percentage of packets received before each threshold.
    #[must_use]
    pub fn percentages(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| {
                if self.total == 0 {
                    0.0
                } else {
                    100.0 * c as f64 / self.total as f64
                }
            })
            .collect()
    }

    /// Percentage of packets that met the deadline (threshold 1.0).
    #[must_use]
    pub fn met_deadline_pct(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        100.0 * (self.total - self.missed) as f64 / self.total as f64
    }

    /// Merges another distribution with identical thresholds.
    pub fn merge(&mut self, other: &DelayDistribution) {
        assert_eq!(self.thresholds, other.thresholds);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.missed += other.missed;
        self.max_ratio = self.max_ratio.max(other.max_ratio);
    }
}

/// Keyed collection of delay distributions (one per group id: SL index
/// or connection index).
#[derive(Clone, Debug)]
pub struct DelayCollector {
    thresholds: Vec<f64>,
    groups: Vec<Option<DelayDistribution>>,
}

impl DelayCollector {
    /// Collector sampling at the default thresholds.
    #[must_use]
    pub fn new() -> Self {
        Self::with_thresholds(&DEFAULT_THRESHOLDS)
    }

    /// Collector with custom thresholds.
    #[must_use]
    pub fn with_thresholds(thresholds: &[f64]) -> Self {
        DelayCollector {
            thresholds: thresholds.to_vec(),
            groups: Vec::new(),
        }
    }

    /// Records one packet into group `key`.
    pub fn record(&mut self, key: usize, delay: u64, deadline: u64) {
        if key >= self.groups.len() {
            self.groups.resize(key + 1, None);
        }
        self.groups[key]
            .get_or_insert_with(|| DelayDistribution::new(&self.thresholds))
            .record(delay, deadline);
    }

    /// The distribution of a group, if any packets were recorded.
    #[must_use]
    pub fn group(&self, key: usize) -> Option<&DelayDistribution> {
        self.groups.get(key).and_then(Option::as_ref)
    }

    /// All populated `(key, distribution)` pairs.
    pub fn groups(&self) -> impl Iterator<Item = (usize, &DelayDistribution)> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(k, g)| g.as_ref().map(|g| (k, g)))
    }

    /// The group keys with the lowest and the highest percentage of
    /// packets meeting `threshold_idx` — the paper's *worst* and *best*
    /// connections of Figure 6. Ties break to the lower key.
    #[must_use]
    pub fn worst_and_best(&self, threshold_idx: usize) -> Option<(usize, usize)> {
        let mut worst: Option<(usize, f64)> = None;
        let mut best: Option<(usize, f64)> = None;
        for (k, g) in self.groups() {
            let pct = g.percentages()[threshold_idx];
            if worst.is_none_or(|(_, w)| pct < w) {
                worst = Some((k, pct));
            }
            if best.is_none_or(|(_, b)| pct > b) {
                best = Some((k, pct));
            }
        }
        Some((worst?.0, best?.0))
    }
}

impl Default for DelayCollector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_complete() {
        let mut d = DelayDistribution::new(&DEFAULT_THRESHOLDS);
        // Deadline 1000; delays spread from tight to exactly on time.
        for delay in [10, 50, 100, 200, 500, 750, 999, 1000] {
            d.record(delay, 1000);
        }
        let pct = d.percentages();
        assert!(pct.windows(2).all(|w| w[0] <= w[1]), "CDF not monotone");
        assert_eq!(*pct.last().unwrap(), 100.0);
        assert_eq!(d.missed(), 0);
        assert_eq!(d.met_deadline_pct(), 100.0);
    }

    #[test]
    fn missed_deadlines_counted() {
        let mut d = DelayDistribution::new(&[0.5, 1.0]);
        d.record(400, 1000);
        d.record(1200, 1000);
        assert_eq!(d.total(), 2);
        assert_eq!(d.missed(), 1);
        assert_eq!(d.met_deadline_pct(), 50.0);
        assert!(d.max_ratio() > 1.19 && d.max_ratio() < 1.21);
        assert_eq!(d.percentages(), vec![50.0, 50.0]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DelayDistribution::new(&[1.0]);
        let mut b = DelayDistribution::new(&[1.0]);
        a.record(10, 100);
        b.record(200, 100);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.missed(), 1);
    }

    #[test]
    fn collector_groups_and_extremes() {
        let mut c = DelayCollector::with_thresholds(&[0.5, 1.0]);
        // Group 0: all tight. Group 1: half loose. Group 2: all loose.
        for _ in 0..10 {
            c.record(0, 10, 100);
            c.record(2, 90, 100);
        }
        for i in 0..10 {
            c.record(1, if i % 2 == 0 { 10 } else { 90 }, 100);
        }
        assert_eq!(c.group(0).unwrap().percentages()[0], 100.0);
        assert_eq!(c.group(2).unwrap().percentages()[0], 0.0);
        let (worst, best) = c.worst_and_best(0).unwrap();
        assert_eq!(worst, 2);
        assert_eq!(best, 0);
        assert!(c.group(3).is_none());
        assert_eq!(c.groups().count(), 3);
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn thresholds_must_ascend() {
        let _ = DelayDistribution::new(&[0.5, 0.5]);
    }
}
