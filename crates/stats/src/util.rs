//! Throughput / utilisation / reservation aggregation for Table 2.

/// Streaming mean (and extrema) accumulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeanAccumulator {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
}

impl MeanAccumulator {
    /// Empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        MeanAccumulator {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples added.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of all samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// The aggregate row set of the paper's Table 2 for one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct UtilizationSummary {
    /// Injected traffic (bytes/cycle/node).
    pub injected_per_node: f64,
    /// Delivered traffic (bytes/cycle/node).
    pub delivered_per_node: f64,
    /// Mean host-interface utilisation (%).
    pub host_utilization_pct: f64,
    /// Mean switch-port utilisation (%).
    pub switch_utilization_pct: f64,
    /// Mean bandwidth reserved on host interfaces (Mbps).
    pub host_reservation_mbps: f64,
    /// Mean bandwidth reserved on switch ports (Mbps).
    pub switch_reservation_mbps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_accumulator_math() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), 0.0);
        for v in [1.0, 2.0, 3.0, 10.0] {
            m.add(v);
        }
        assert_eq!(m.count(), 4);
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.max(), 10.0);
        assert_eq!(m.sum(), 16.0);
    }

    #[test]
    fn empty_extrema_are_zero() {
        let m = MeanAccumulator::new();
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 0.0);
    }
}
