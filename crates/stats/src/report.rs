//! Plain-text table and CSV rendering for the experiment binaries.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table: header row + data rows, rendered with aligned
/// columns or as CSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers (all right-aligned
    /// except the first).
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        let aligns = (0..header.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Overrides column alignments.
    pub fn set_aligns(&mut self, aligns: Vec<Align>) {
        assert_eq!(aligns.len(), self.header.len());
        self.aligns = aligns;
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width mismatch in table '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a row of display-formatted values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns, title and a separator rule.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{cell:<w$}");
                    }
                    Align::Right => {
                        let _ = write!(line, "{cell:>w$}");
                    }
                }
            }
            line.trim_end().to_string()
        };
        let header = fmt_row(&self.header, &widths, &self.aligns);
        let rule = "-".repeat(header.len());
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }

    /// Renders as CSV (no title).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `digits` decimals (helper for rows).
#[must_use]
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "value", "pct"]);
        t.row(vec!["alpha".into(), "10".into(), "50.0".into()]);
        t.row(vec!["b".into(), "2".into(), "100.0".into()]);
        t
    }

    #[test]
    fn renders_aligned() {
        let r = sample().render();
        assert!(r.contains("Demo"));
        let lines: Vec<&str> = r.lines().collect();
        // header, rule, two rows (after the title line)
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].chars().all(|c| c == '-'));
        // Right-aligned numbers line up at the end.
        assert!(lines[3].contains("alpha"));
        assert!(lines[4].starts_with("b"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(0.5, 3), "0.500");
    }

    #[test]
    fn len_and_empty() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(Table::new("x", &["a"]).is_empty());
    }
}
