//! # iba-stats — measurement and reporting
//!
//! Dependency-free accumulators for the paper's metrics:
//!
//! * [`delay`] — per-connection delay distributions against deadline
//!   thresholds (Figures 4 and 6);
//! * [`jitter`] — interarrival-time deviation histograms (Figure 5);
//! * [`util`] — throughput / utilisation / reservation aggregation
//!   (Table 2);
//! * [`report`] — ASCII tables and CSV output shared by the experiment
//!   binaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delay;
pub mod jitter;
pub mod report;
pub mod series;
pub mod util;

pub use delay::{DelayCollector, DelayDistribution, DEFAULT_THRESHOLDS};
pub use jitter::{JitterCollector, JitterHistogram, JITTER_BIN_LABELS};
pub use report::{Align, Table};
pub use series::{Series, TimeBins};
pub use util::{MeanAccumulator, UtilizationSummary};
