//! Direct tests of the paper's prose claims, at the integration level.

use infiniband_qos::core::Distance;
use infiniband_qos::prelude::*;
use infiniband_qos::sim::Arrival;

fn loaded_frame(seed: u64) -> QosFrame {
    let topo = generate(IrregularConfig::with_switches(8, seed));
    let routing = compute_routing(&topo);
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(256),
    );
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, seed ^ 1),
    );
    frame.fill(&mut gen, 30, 2000);
    frame
}

/// "If some source sends more than it previously requested this will
/// affect only the connections sharing the same VL, but the rest of the
/// traffic in others VLs will achieve what they requested."
#[test]
fn oversending_damage_is_confined_to_its_vl() {
    let frame = loaded_frame(21);
    let (mut fabric, mut obs) = frame.build_fabric(2, None);

    // An unregistered rogue source floods SL7 (VL7) from host 0 at a
    // rate far beyond anything reserved on that lane.
    let rogue_dst = frame
        .manager
        .connections()
        .find(|(_, c)| c.request.sl.raw() == 7)
        .map_or(HostId(9), |(_, c)| c.request.dst);
    fabric.add_flow(FlowSpec {
        id: 5_000_000,
        src: HostId(0),
        dst: rogue_dst,
        sl: ServiceLevel::new(7).unwrap(),
        packet_bytes: 256,
        arrival: Arrival::Cbr { interval: 300 }, // ~85% of a link by itself
        start: 0,
        stop: None,
    });

    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(10_000_000, &mut obs);

    // Every other SL keeps its guarantee.
    for (sl, d) in obs.delay_by_sl.groups() {
        if sl == 7 {
            continue; // the victimised lane may suffer — that's the point
        }
        assert_eq!(
            d.missed(),
            0,
            "SL{sl} on a different VL lost its guarantee to the rogue"
        );
    }
}

/// "B traffic could be considered as BTS traffic with a big enough time
/// deadline" — a pure-bandwidth request classifies into a d=64 DB SL.
#[test]
fn db_is_bts_with_loose_deadline() {
    let topo = generate(IrregularConfig::with_switches(4, 4));
    let routing = compute_routing(&topo);
    let manager = QosManager::new(topo, routing, SlTable::paper_table1());
    // An enormous deadline with real bandwidth: lands in SL 6..=9.
    let req = manager
        .classify_request(0, HostId(0), HostId(9), u64::MAX / 4, 40.0, 256)
        .unwrap();
    assert!(req.sl.raw() >= 6, "{} is not a DB level", req.sl);
    assert_eq!(req.distance, Distance::D64);
}

/// "for a certain connection that requests a maximum distance d and a
/// mean bandwidth that turns in a weight w, the number of entries
/// needed is max{64/d, w/255}" — visible through the table state.
#[test]
fn entry_count_formula_is_respected() {
    let topo = generate(IrregularConfig::with_switches(2, 5));
    let routing = compute_routing(&topo);
    let mut manager = QosManager::new(topo, routing, SlTable::paper_table1());

    // Latency-dominated: 2 Mbps at d=2 -> 32 entries.
    let strict = ConnectionRequest {
        id: 0,
        src: HostId(0),
        dst: HostId(7),
        sl: ServiceLevel::new(0).unwrap(),
        distance: Distance::D2,
        mean_bw_mbps: 2.0,
        packet_bytes: 256,
    };
    let id = manager.request(&strict).unwrap();
    let conn = manager.connection(id).unwrap();
    let hop = conn.hops[0];
    let info = manager
        .port_tables()
        .sequence_info(manager.path_ports(strict.src, strict.dst)[0], hop.sequence)
        .unwrap();
    assert_eq!(info.eset.len(), 32);

    // Bandwidth-dominated: 128 Mbps at d=64 -> weight 836 -> 4 entries.
    let bulky = ConnectionRequest {
        id: 1,
        src: HostId(1),
        dst: HostId(6),
        sl: ServiceLevel::new(9).unwrap(),
        distance: Distance::D64,
        mean_bw_mbps: 128.0,
        packet_bytes: 256,
    };
    let id = manager.request(&bulky).unwrap();
    let conn = manager.connection(id).unwrap();
    let info = manager
        .port_tables()
        .sequence_info(
            manager.path_ports(bulky.src, bulky.dst)[0],
            conn.hops[0].sequence,
        )
        .unwrap();
    assert_eq!(conn.weight, 836);
    assert_eq!(info.eset.len(), 4);
}

/// "several connections, with the same VL, shared the entries in the
/// arbitration tables ... until they fill in the maximum weight of
/// their entries" — acceptance is bandwidth-limited, not entry-limited.
#[test]
fn admission_is_not_limited_by_64_entries() {
    let topo = generate(IrregularConfig::with_switches(2, 6));
    let routing = compute_routing(&topo);
    let mut manager = QosManager::new(topo, routing, SlTable::paper_table1());
    // Many tiny same-SL connections between the same pair: far more than
    // the table's 64 entries could hold one-per-connection.
    let mut accepted = 0;
    for i in 0..300 {
        let req = ConnectionRequest {
            id: i,
            src: HostId(0),
            dst: HostId(7),
            sl: ServiceLevel::new(6).unwrap(),
            distance: Distance::D64,
            mean_bw_mbps: 1.0,
            packet_bytes: 256,
        };
        if manager.request(&req).is_ok() {
            accepted += 1;
        }
    }
    assert!(accepted > 64, "only {accepted} accepted — entry-limited?");
    manager.port_tables().check_all().unwrap();
}

/// "When no more connections can be established" the reservation is
/// bounded by the 80% cap on every port.
#[test]
fn no_port_exceeds_the_qos_share() {
    let frame = loaded_frame(22);
    for (_, table) in frame.manager.port_tables().tables() {
        assert!(table.reserved_weight() <= table.capacity_limit());
    }
}
