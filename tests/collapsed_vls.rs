//! §3.2 of the paper: when ports implement fewer than 16 VLs, several
//! SLs share a VL and admission enforces the most restrictive distance
//! of the sharing set. These tests pin that behaviour end to end.

use infiniband_qos::core::{Distance, SlToVlMap};
use infiniband_qos::prelude::*;

fn build(n_qos_vls: Option<u8>, seed: u64) -> QosFrame {
    let topo = generate(IrregularConfig::with_switches(4, seed));
    let routing = compute_routing(&topo);
    let mut config = SimConfig::paper_default(256);
    let mut manager = QosManager::new(topo, routing, SlTable::paper_table1());
    if let Some(n) = n_qos_vls {
        let map = SlToVlMap::collapsed_qos(n);
        config.sl_to_vl = map.clone();
        manager.set_sl_to_vl(map);
    }
    QosFrame::with_manager(manager, config)
}

#[test]
fn effective_distance_tightens_in_shared_lanes() {
    let frame = build(Some(2), 3);
    let m = &frame.manager;
    // With 2 QoS lanes, SLs 0,2,4,6,8 share VL0 and 1,3,5,7,9 share VL1.
    // VL0's tightest SL is SL0 (d=2); VL1's is SL1 (d=4).
    for sl in [0u8, 2, 4, 6, 8] {
        assert_eq!(
            m.effective_distance(ServiceLevel::new(sl).unwrap()),
            Some(Distance::D2),
            "SL{sl}"
        );
    }
    for sl in [1u8, 3, 5, 7, 9] {
        assert_eq!(
            m.effective_distance(ServiceLevel::new(sl).unwrap()),
            Some(Distance::D4),
            "SL{sl}"
        );
    }
    // Identity mapping leaves distances alone.
    let frame = build(None, 3);
    assert_eq!(
        frame
            .manager
            .effective_distance(ServiceLevel::new(9).unwrap()),
        Some(Distance::D64)
    );
}

#[test]
fn fewer_lanes_admit_fewer_connections() {
    let count = |n: Option<u8>| {
        let mut frame = build(n, 5);
        let topo = frame.manager.topology().clone();
        let mut gen = RequestGenerator::new(
            &topo,
            &SlTable::paper_table1(),
            &WorkloadConfig::new(256, 77),
        );
        frame.fill(&mut gen, 40, 4000).accepted
    };
    let full = count(None);
    let four = count(Some(4));
    let two = count(Some(2));
    assert!(full > four, "16 lanes: {full}, 7 lanes: {four}");
    assert!(four > two, "7 lanes: {four}, 5 lanes: {two}");
    assert!(two > 0);
}

#[test]
fn shared_lane_guarantees_still_hold() {
    let mut frame = build(Some(4), 8);
    let topo = frame.manager.topology().clone();
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, 9),
    );
    let report = frame.fill(&mut gen, 30, 1500);
    assert!(report.accepted > 10, "only {}", report.accepted);

    let (mut fabric, mut obs) = frame.build_fabric(2, Some(&BackgroundConfig::default()));
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(8_000_000, &mut obs);
    assert!(obs.qos_packets > 500);
    for (sl, d) in obs.delay_by_sl.groups() {
        assert_eq!(
            d.missed(),
            0,
            "SL{sl} missed {} deadlines in a shared lane",
            d.missed()
        );
    }
    // Best effort still flows on its dedicated lanes.
    assert!(obs.be_packets > 0);
}

#[test]
fn be_lanes_never_collide_with_qos_lanes() {
    for n in [1u8, 2, 4, 8, 12] {
        let map = SlToVlMap::collapsed_qos(n);
        let qos: Vec<u8> = (0..10)
            .map(|i| map.vl(ServiceLevel::new(i).unwrap()).raw())
            .collect();
        for be in [10u8, 11, 12] {
            let v = map.vl(ServiceLevel::new(be).unwrap()).raw();
            assert!(!qos.contains(&v), "n={n}: SL{be} on QoS lane VL{v}");
        }
    }
}
