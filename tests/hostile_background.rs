//! Robustness: QoS guarantees must survive hostile best-effort traffic
//! patterns — a best-effort hotspot oversubscribing one destination, or
//! a saturating permutation — because the low-priority table can never
//! pre-empt a high-priority entry.

use infiniband_qos::prelude::*;
use infiniband_qos::traffic::hotspot::{hotspot_flows, permutation_flows};

fn loaded_frame(seed: u64) -> QosFrame {
    let topo = generate(IrregularConfig::with_switches(8, seed));
    let routing = compute_routing(&topo);
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(256),
    );
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, seed ^ 2),
    );
    frame.fill(&mut gen, 30, 1500);
    frame
}

#[test]
fn best_effort_hotspot_cannot_break_guarantees() {
    let frame = loaded_frame(41);
    let (mut fabric, mut obs) = frame.build_fabric(1, None);
    // Every host floods host 0 with best-effort (SL 11) at 60% of a
    // link each — the hotspot port is oversubscribed ~19x.
    for f in hotspot_flows(
        frame.manager.topology(),
        HostId(0),
        ServiceLevel::new(11).unwrap(),
        0.6,
        256,
        2_000_000,
    ) {
        fabric.add_flow(f);
    }
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(10_000_000, &mut obs);

    assert!(obs.qos_packets > 1000);
    for (sl, d) in obs.delay_by_sl.groups() {
        assert_eq!(
            d.missed(),
            0,
            "SL{sl} lost its guarantee to a best-effort hotspot"
        );
    }
    // The hotspot traffic still gets through in the gaps.
    assert!(obs.be_packets > 0);
}

#[test]
fn heavy_permutation_background_is_harmless() {
    // 50% PBE per host — 2.5x the 20% the operator provisioned for best
    // effort, still below link saturation: guarantees must be intact.
    let frame = loaded_frame(43);
    let (mut fabric, mut obs) = frame.build_fabric(2, None);
    for f in permutation_flows(
        frame.manager.topology(),
        ServiceLevel::new(10).unwrap(),
        0.5,
        256,
        7,
        3_000_000,
    ) {
        fabric.add_flow(f);
    }
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(10_000_000, &mut obs);

    for (sl, d) in obs.delay_by_sl.groups() {
        assert_eq!(d.missed(), 0, "SL{sl} broken by permutation background");
    }
}

/// Beyond the provisioned envelope: every host *saturates* its link
/// with phase-locked best-effort CBR on top of the QoS load. The
/// multiplexed crossbar then exhibits a small, real priority inversion:
/// a low-priority transfer can hold an input port when a high-priority
/// packet wants it, and perfectly periodic traffic can lose that race
/// repeatedly. The effect stays marginal (< 0.5% of packets) — pinned
/// here so a regression (or a fix) is visible.
#[test]
fn sustained_saturation_inversion_stays_marginal() {
    let frame = loaded_frame(43);
    let (mut fabric, mut obs) = frame.build_fabric(2, None);
    for f in permutation_flows(
        frame.manager.topology(),
        ServiceLevel::new(10).unwrap(),
        1.0,
        256,
        7,
        3_000_000,
    ) {
        fabric.add_flow(f);
    }
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(10_000_000, &mut obs);

    let total: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.total()).sum();
    let missed: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    assert!(total > 100_000);
    let ratio = missed as f64 / total as f64;
    assert!(
        ratio < 5e-3,
        "inversion beyond marginal: {missed}/{total} = {ratio:.5}"
    );
}

/// The extension fixes the inversion: with priority-aware input
/// claiming, even sustained phase-locked saturation cannot make a
/// guaranteed packet miss its deadline.
#[test]
fn priority_input_claiming_eliminates_the_inversion() {
    let topo = generate(IrregularConfig::with_switches(8, 43));
    let routing = compute_routing(&topo);
    let mut config = SimConfig::paper_default(256);
    config.priority_input_claiming = true;
    let mut frame = QosFrame::new(topo.clone(), routing, SlTable::paper_table1(), config);
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, 43 ^ 2),
    );
    frame.fill(&mut gen, 30, 1500);

    let (mut fabric, mut obs) = frame.build_fabric(2, None);
    for f in permutation_flows(
        frame.manager.topology(),
        ServiceLevel::new(10).unwrap(),
        1.0,
        256,
        7,
        3_000_000,
    ) {
        fabric.add_flow(f);
    }
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(10_000_000, &mut obs);

    let missed: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    assert_eq!(missed, 0, "inversion survived the extension");
    // Best effort is not starved out entirely.
    assert!(obs.be_packets > 0);
}
