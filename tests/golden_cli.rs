//! Golden-file tests for the `ibaqos` CLI output.
//!
//! `report` and `trace` render the observability contract (`METRICS.md`)
//! for a fixed small experiment; the expected output is committed under
//! `tests/golden/`. Any change to metric names, table layout, or — more
//! importantly — the simulation results themselves shows up here as a
//! diff, which keeps the deterministic-engine guarantee honest: the
//! calendar event queue, the packet pool, and the harness refactors must
//! all reproduce the exact pre-refactor event order.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo run -p iba-cli -- report --switches 4 --seed 3 --steady-packets 2 \
//!     --mtu 256 > tests/golden/report_s4_seed3.txt
//! cargo run -p iba-cli -- trace --switches 4 --seed 3 --steady-packets 2 \
//!     --mtu 256 --limit 12 > tests/golden/trace_s4_seed3_limit12.txt
//! cargo run -p iba-cli -- audit --mtu 4096 --seed 42 \
//!     > tests/golden/audit_bitrev_mtu4096_seed42.txt
//! IBA_REGEN_GOLDEN=1 cargo test --test golden_cli   # perfetto_min.json + chaos_*.txt
//! ```

fn run_cli(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    iba_cli::run(&argv).expect("golden CLI invocation parses and runs")
}

/// Diffs `got` against the committed fixture, with a line-numbered
/// first-mismatch report so a failure is actionable without a local
/// rerun.
fn assert_matches_golden(got: &str, fixture: &str) {
    let path = format!("{}/tests/golden/{}", env!("CARGO_MANIFEST_DIR"), fixture);
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden fixture {path}: {e}"));
    // The fixtures were captured from the binary, whose `println!`
    // appends one newline beyond what `iba_cli::run` returns.
    let (got, want) = (got.trim_end_matches('\n'), want.trim_end_matches('\n'));
    if got == want {
        return;
    }
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "first divergence from {fixture} at line {} (regenerate the \
             fixture only if the output change is intentional)",
            i + 1
        );
    }
    panic!(
        "{fixture}: line count differs (got {}, want {})",
        got.lines().count(),
        want.lines().count()
    );
}

/// The synthetic two-source timeline behind the committed
/// `perfetto_min.json` fixture: explicit span timestamps (no wall
/// clock involved) plus a deterministic sim-cycle ring, so the
/// rendered document is byte-stable across machines.
fn minimal_perfetto_doc() -> iba_obs::Json {
    use iba_obs::{perfetto_trace, RingTracer, ServedKind, SpanPhase, SpanRecorder, TraceEvent};
    let mut spans = SpanRecorder::with_epoch(16, std::time::Instant::now());
    spans.push_raw("audit.fill", 1, 1_000, SpanPhase::Begin);
    spans.push_raw("audit.fill", 1, 4_000, SpanPhase::End);
    spans.push_raw("audit.drive", 1, 4_500, SpanPhase::Begin);
    spans.push_raw("audit.drive", 1, 9_000, SpanPhase::End);
    let mut sim = RingTracer::new(8);
    sim.push(
        3,
        TraceEvent::Grant {
            vl: 2,
            bytes: 4096,
            served: ServedKind::High,
        },
    );
    sim.push(7, TraceEvent::WeightExhausted { vl: 2 });
    sim.push(
        11,
        TraceEvent::AuditViolation {
            vl: 2,
            gap_slots: 8,
            budget_slots: 4,
        },
    );
    perfetto_trace(Some(&spans), Some(&sim))
}

#[test]
fn report_output_matches_golden_file() {
    let out = run_cli(&[
        "report",
        "--switches",
        "4",
        "--seed",
        "3",
        "--steady-packets",
        "2",
        "--mtu",
        "256",
    ]);
    assert_matches_golden(&out, "report_s4_seed3.txt");
}

#[test]
fn report_prom_output_matches_golden_file() {
    // The Prometheus exposition of the same experiment as
    // `report_s4_seed3.txt` — a pure function of the snapshot, so it
    // is byte-stable across machines and refactors.
    let got = run_cli(&[
        "report",
        "--switches",
        "4",
        "--seed",
        "3",
        "--steady-packets",
        "2",
        "--mtu",
        "256",
        "--prom",
    ]);
    let path = format!(
        "{}/tests/golden/report_prom_s4_seed3.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("IBA_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("regenerate prom fixture");
        return;
    }
    assert_matches_golden(&got, "report_prom_s4_seed3.txt");
}

#[test]
fn timeline_json_matches_at_every_thread_count() {
    // The CLI-level form of the timeline invariance contract: the
    // TIMELINE.json document must be byte-identical at any --threads.
    let doc = |threads: &str| {
        run_cli(&[
            "timeline",
            "--switches",
            "4",
            "--seed",
            "11",
            "--seeds",
            "3",
            "--steady-packets",
            "2",
            "--window",
            "2048",
            "--json",
            "--threads",
            threads,
        ])
    };
    let got = doc("1");
    assert!(got.contains("iba.timeline.v1"), "{got}");
    assert_eq!(got, doc("2"), "TIMELINE.json diverges at 2 threads");
    assert_eq!(got, doc("8"), "TIMELINE.json diverges at 8 threads");
}

#[test]
fn trace_output_matches_golden_file() {
    let out = run_cli(&[
        "trace",
        "--switches",
        "4",
        "--seed",
        "3",
        "--steady-packets",
        "2",
        "--mtu",
        "256",
        "--limit",
        "12",
    ]);
    assert_matches_golden(&out, "trace_s4_seed3_limit12.txt");
}

#[test]
fn audit_report_matches_golden_file() {
    let out = run_cli(&["audit", "--mtu", "4096", "--seed", "42"]);
    assert_matches_golden(&out, "audit_bitrev_mtu4096_seed42.txt");
}

#[test]
fn chaos_report_matches_golden_file() {
    // Faults ride the event calendar and every stage is seeded, so the
    // whole report — recovery counters, per-lane audit, sweep digest —
    // is byte-stable across machines and thread counts.
    let got = run_cli(&[
        "chaos",
        "--mtu",
        "4096",
        "--seed",
        "42",
        "--seeds",
        "2",
        "--threads",
        "2",
    ]);
    let path = format!(
        "{}/tests/golden/chaos_bitrev_mtu4096_seed42.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("IBA_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("regenerate chaos fixture");
        return;
    }
    assert_matches_golden(&got, "chaos_bitrev_mtu4096_seed42.txt");
}

#[test]
fn minimal_perfetto_trace_matches_golden_file() {
    let got = minimal_perfetto_doc().pretty();
    let path = format!(
        "{}/tests/golden/perfetto_min.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("IBA_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("regenerate perfetto fixture");
        return;
    }
    assert_matches_golden(&got, "perfetto_min.json");
}

/// Structural contract on the real `audit --perfetto` export: the file
/// must parse with the workspace JSON parser, every trace event must
/// carry the `ph`/`ts`/`pid`/`tid`/`name` keys, and timestamps must be
/// monotone within each `(pid, tid)` track.
#[test]
fn audit_perfetto_export_is_structurally_valid() {
    use iba_obs::Json;
    let path = std::env::temp_dir().join(format!(
        "ibaqos_golden_perfetto_{}.json",
        std::process::id()
    ));
    let path_str = path.to_str().expect("temp path is utf-8");
    let _ = run_cli(&[
        "audit",
        "--mtu",
        "4096",
        "--seed",
        "42",
        "--perfetto",
        path_str,
    ]);
    let text = std::fs::read_to_string(&path).expect("perfetto export written");
    let _ = std::fs::remove_file(&path);
    let doc = Json::parse(&text).expect("perfetto export parses");
    let Some(Json::Array(events)) = doc.get("traceEvents") else {
        panic!("traceEvents array missing");
    };
    assert!(!events.is_empty(), "perfetto export has no events");
    let mut last: std::collections::HashMap<(String, String), f64> =
        std::collections::HashMap::new();
    for ev in events {
        for key in ["ph", "ts", "pid", "tid", "name"] {
            assert!(ev.get(key).is_some(), "missing `{key}` in {ev:?}");
        }
        if ev.get("ph") == Some(&Json::str("M")) {
            continue;
        }
        let pid = format!("{:?}", ev.get("pid"));
        let tid = format!("{:?}", ev.get("tid"));
        let ts = ev.get("ts").and_then(Json::as_f64).expect("numeric ts");
        if let Some(prev) = last.insert((pid, tid), ts) {
            assert!(prev <= ts, "track went backwards: {prev} > {ts}");
        }
    }
}

#[test]
fn serve_replay_matches_golden_file_at_every_shard_count() {
    // The replay report deliberately contains nothing that depends on
    // the shard count (the `serve_*` metrics are filtered out), so the
    // same fixture must match at 1, 2 and 8 shards — the golden-file
    // form of the service's determinism contract.
    let replay = |shards: &str| {
        run_cli(&[
            "serve",
            "--switches",
            "4",
            "--seed",
            "3",
            "--requests",
            "96",
            "--replay",
            "--shards",
            shards,
        ])
    };
    let got = replay("2");
    assert_eq!(got, replay("1"), "replay diverges between 1 and 2 shards");
    assert_eq!(got, replay("8"), "replay diverges between 2 and 8 shards");
    let path = format!(
        "{}/tests/golden/serve_trace_s4_seed3.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("IBA_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("regenerate serve fixture");
        return;
    }
    assert_matches_golden(&got, "serve_trace_s4_seed3.txt");
}

#[test]
fn chaos_serve_replay_matches_golden_file_at_every_shard_count() {
    // The fault engine targets the lowest participant shard and every
    // timeout is logical, so the faulted replay report — fault counts
    // included — is shard-count-invariant: one fixture, four shard
    // counts. A diff here means either the fault calendar or the
    // recovery machinery changed behaviour.
    let replay = |shards: &str| {
        run_cli(&[
            "chaos-serve",
            "--switches",
            "4",
            "--seed",
            "7",
            "--requests",
            "48",
            "--replay",
            "--shards",
            shards,
        ])
    };
    let got = replay("4");
    assert_eq!(got, replay("1"), "replay diverges between 1 and 4 shards");
    assert_eq!(got, replay("2"), "replay diverges between 2 and 4 shards");
    assert_eq!(got, replay("8"), "replay diverges between 4 and 8 shards");
    let path = format!(
        "{}/tests/golden/chaos_serve_s4_seed7.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var_os("IBA_REGEN_GOLDEN").is_some() {
        std::fs::write(&path, format!("{got}\n")).expect("regenerate chaos-serve fixture");
        return;
    }
    assert_matches_golden(&got, "chaos_serve_s4_seed7.txt");
}
