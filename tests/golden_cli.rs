//! Golden-file tests for the `ibaqos` CLI output.
//!
//! `report` and `trace` render the observability contract (`METRICS.md`)
//! for a fixed small experiment; the expected output is committed under
//! `tests/golden/`. Any change to metric names, table layout, or — more
//! importantly — the simulation results themselves shows up here as a
//! diff, which keeps the deterministic-engine guarantee honest: the
//! calendar event queue, the packet pool, and the harness refactors must
//! all reproduce the exact pre-refactor event order.
//!
//! To regenerate after an *intentional* output change:
//!
//! ```text
//! cargo run -p iba-cli -- report --switches 4 --seed 3 --steady-packets 2 \
//!     --mtu 256 > tests/golden/report_s4_seed3.txt
//! cargo run -p iba-cli -- trace --switches 4 --seed 3 --steady-packets 2 \
//!     --mtu 256 --limit 12 > tests/golden/trace_s4_seed3_limit12.txt
//! ```

fn run_cli(argv: &[&str]) -> String {
    let argv: Vec<String> = argv.iter().map(|s| s.to_string()).collect();
    iba_cli::run(&argv).expect("golden CLI invocation parses and runs")
}

/// Diffs `got` against the committed fixture, with a line-numbered
/// first-mismatch report so a failure is actionable without a local
/// rerun.
fn assert_matches_golden(got: &str, fixture: &str) {
    let path = format!("{}/tests/golden/{}", env!("CARGO_MANIFEST_DIR"), fixture);
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden fixture {path}: {e}"));
    // The fixtures were captured from the binary, whose `println!`
    // appends one newline beyond what `iba_cli::run` returns.
    let (got, want) = (got.trim_end_matches('\n'), want.trim_end_matches('\n'));
    if got == want {
        return;
    }
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(
            g,
            w,
            "first divergence from {fixture} at line {} (regenerate the \
             fixture only if the output change is intentional)",
            i + 1
        );
    }
    panic!(
        "{fixture}: line count differs (got {}, want {})",
        got.lines().count(),
        want.lines().count()
    );
}

#[test]
fn report_output_matches_golden_file() {
    let out = run_cli(&[
        "report",
        "--switches",
        "4",
        "--seed",
        "3",
        "--steady-packets",
        "2",
        "--mtu",
        "256",
    ]);
    assert_matches_golden(&out, "report_s4_seed3.txt");
}

#[test]
fn trace_output_matches_golden_file() {
    let out = run_cli(&[
        "trace",
        "--switches",
        "4",
        "--seed",
        "3",
        "--steady-packets",
        "2",
        "--mtu",
        "256",
        "--limit",
        "12",
    ]);
    assert_matches_golden(&out, "trace_s4_seed3_limit12.txt");
}
