//! Cross-crate integration: the paper's full pipeline on a scaled-down
//! fabric — generate topology, route, classify, admit to saturation,
//! simulate, and check the QoS guarantees hold.

use infiniband_qos::prelude::*;

/// Builds a loaded frame on an 8-switch fabric and returns it with its
/// fill statistics.
fn loaded_frame(seed: u64, mtu: u32) -> (QosFrame, u32) {
    let topo = generate(IrregularConfig::with_switches(8, seed));
    let routing = compute_routing(&topo);
    let mut frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(mtu),
    );
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(mtu, seed ^ 0xFEED),
    );
    let report = frame.fill(&mut gen, 30, 2000);
    (frame, report.accepted)
}

#[test]
fn loaded_fabric_meets_every_deadline() {
    let (frame, accepted) = loaded_frame(11, 256);
    assert!(accepted > 40, "only {accepted} connections admitted");

    let (mut fabric, mut obs) = frame.build_fabric(3, None);
    // Transient period, then measure.
    let transient = 2_000_000;
    fabric.run_until(transient, &mut obs);
    obs.reset_samples();
    fabric.reset_stats();
    fabric.run_until(transient + 6_000_000, &mut obs);

    assert!(
        obs.qos_packets > 1000,
        "too few packets: {}",
        obs.qos_packets
    );
    // The paper's headline claim: all packets of all SLs arrive before
    // their deadlines.
    for (sl, dist) in obs.delay_by_sl.groups() {
        assert_eq!(
            dist.missed(),
            0,
            "SL{sl} missed {} of {} deadlines (max ratio {:.3})",
            dist.missed(),
            dist.total(),
            dist.max_ratio()
        );
    }
}

#[test]
fn background_traffic_does_not_break_guarantees() {
    let (frame, _) = loaded_frame(12, 256);
    let bg = BackgroundConfig {
        load_fraction: 0.15,
        ..Default::default()
    };
    let (mut fabric, mut obs) = frame.build_fabric(4, Some(&bg));
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.reset_stats();
    fabric.run_until(8_000_000, &mut obs);

    assert!(obs.be_packets > 0, "background never delivered");
    for (sl, dist) in obs.delay_by_sl.groups() {
        assert_eq!(
            dist.missed(),
            0,
            "SL{sl} missed deadlines under background load"
        );
    }
}

#[test]
fn jitter_never_exceeds_iat_for_low_bandwidth_sls() {
    let (frame, _) = loaded_frame(13, 256);
    let (mut fabric, mut obs) = frame.build_fabric(5, None);
    fabric.run_until(2_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(10_000_000, &mut obs);

    // Low-bandwidth SLs (0-4, 6) have huge IATs relative to network
    // delays: every gap lands in the central interval (paper Fig. 5).
    for sl in [0usize, 1, 2, 3] {
        if let Some(h) = obs.jitter.group(sl) {
            if h.total() > 10 {
                assert!(
                    h.central_pct() > 99.0,
                    "SL{sl} central jitter only {:.1}%",
                    h.central_pct()
                );
            }
        }
    }
}

#[test]
fn large_packets_behave_like_small() {
    let (frame, accepted) = loaded_frame(14, 4096);
    assert!(accepted > 40);
    let (mut fabric, mut obs) = frame.build_fabric(6, None);
    fabric.run_until(4_000_000, &mut obs);
    obs.reset_samples();
    fabric.run_until(16_000_000, &mut obs);
    for (sl, dist) in obs.delay_by_sl.groups() {
        assert_eq!(dist.missed(), 0, "SL{sl} missed deadlines at 4KB MTU");
    }
}

#[test]
fn teardown_frees_capacity_for_new_connections() {
    let (mut frame, _) = loaded_frame(15, 256);
    // Tear down every connection.
    let ids: Vec<_> = frame.manager.connections().map(|(id, _)| id).collect();
    let n = ids.len();
    for id in ids {
        assert!(frame.manager.teardown(id));
    }
    assert_eq!(frame.manager.live_connections(), 0);
    frame.manager.port_tables().check_all().unwrap();

    // The fabric accepts a comparable load again.
    let topo = frame.manager.topology().clone();
    let mut gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, 999),
    );
    let report = frame.fill(&mut gen, 30, 2000);
    assert!(
        report.accepted as usize >= n / 2,
        "refill admitted only {} vs {} before",
        report.accepted,
        n
    );
}

#[test]
fn utilization_stays_below_qos_cap() {
    let (frame, _) = loaded_frame(16, 256);
    let (mut fabric, mut obs) = frame.build_fabric(8, None);
    fabric.run_until(2_000_000, &mut obs);
    fabric.reset_stats();
    fabric.run_until(8_000_000, &mut obs);
    let st = fabric.summarize();
    // QoS admission reserves at most 80% of any link; with only QoS
    // traffic no link class can exceed it.
    assert!(
        st.host_link_utilization <= 82.0,
        "host links at {:.1}%",
        st.host_link_utilization
    );
    assert!(
        st.switch_link_utilization <= 82.0,
        "switch links at {:.1}%",
        st.switch_link_utilization
    );
    // And traffic actually flows.
    assert!(st.delivered_bytes > 0);
}
