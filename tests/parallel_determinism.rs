//! Determinism contract of the parallel experiment engine.
//!
//! The harness promises *byte-identical* results for any worker count:
//! runs are sharded over threads, but the merge is order-independent
//! (results re-sorted by run id, metrics merged commutatively). These
//! tests pin that promise at the workspace level, on top of the pooled
//! packet buffers and the calendar event queue — the two hot-path
//! structures whose internal layout must never leak into results.

use infiniband_qos::harness::{
    build_experiment_sized, run_measured, run_measured_recorded, run_points, threads_from_env,
    SimPoint,
};

/// Four heterogeneous sweep points: two topology sizes, two seeds, two
/// MTUs — small enough for debug-mode CI, varied enough that a
/// scheduling bug would misattribute results across points.
fn sweep_points() -> Vec<SimPoint> {
    let mut pts = Vec::new();
    for (switches, seed, mtu) in [(4, 11, 256), (4, 12, 1024), (6, 11, 256), (6, 12, 1024)] {
        pts.push(SimPoint {
            switches,
            seed,
            mtu,
            background: false,
            steady_packets: 3,
            reject_limit: 40,
        });
    }
    pts
}

/// Renders the merged metric registry minus `harness_threads`, the one
/// gauge that is *supposed* to differ between runs (it records the
/// worker count itself).
fn metrics_fingerprint(rec: &iba_obs::ObsRecorder) -> String {
    iba_obs::render_metrics(&rec.metrics)
        .lines()
        .filter(|l| !l.contains("harness_threads"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The headline guarantee: the same sweep at 1, 2 and 8 workers yields
/// byte-identical rendered outcomes *and* an identical merged metrics
/// registry (sans the thread-count gauge).
#[test]
fn sweep_is_byte_identical_at_1_2_and_8_threads() {
    let points = sweep_points();
    let (base_outcomes, base_rec) = run_points(&points, 1);
    let base_rendered: Vec<String> = base_outcomes.iter().map(|o| o.render()).collect();
    let base_metrics = metrics_fingerprint(&base_rec);
    assert_eq!(base_rec.metrics.harness_runs.get(), points.len() as u64);

    for threads in [2, 8] {
        let (outcomes, rec) = run_points(&points, threads);
        let rendered: Vec<String> = outcomes.iter().map(|o| o.render()).collect();
        assert_eq!(
            rendered, base_rendered,
            "outcomes diverged at {threads} threads"
        );
        assert_eq!(
            metrics_fingerprint(&rec),
            base_metrics,
            "merged metrics diverged at {threads} threads"
        );
        // The engine never spawns more workers than there are runs.
        assert_eq!(
            rec.metrics.harness_threads.get(),
            threads.min(points.len()) as i64
        );
    }
}

/// `IBA_THREADS` is the user-facing knob for the same guarantee: wire
/// it through `threads_from_env` and check the sweep still replays.
/// (This is the only test in this binary that touches the environment.)
#[test]
fn iba_threads_env_var_is_honoured_and_preserves_results() {
    let points = sweep_points();
    let (base_outcomes, _) = run_points(&points, 1);
    let base: Vec<String> = base_outcomes.iter().map(|o| o.render()).collect();

    for setting in ["2", "8"] {
        std::env::set_var("IBA_THREADS", setting);
        let threads = threads_from_env();
        assert_eq!(threads, setting.parse::<usize>().unwrap());
        let (outcomes, _) = run_points(&points, threads);
        let rendered: Vec<String> = outcomes.iter().map(|o| o.render()).collect();
        assert_eq!(rendered, base, "IBA_THREADS={setting} changed results");
    }
    std::env::remove_var("IBA_THREADS");
}

/// Instrumentation must be a pure observer: a recorded run (per-event
/// metric hooks active through the calendar queue and packet pool)
/// delivers the same packets in the same order as a plain run — the
/// FNV-1a delivery digest is the witness.
#[test]
fn recorded_run_equals_plain_run_under_pool_and_calendar_queue() {
    for (mtu, seed) in [(256u32, 7u64), (1024, 8)] {
        let exp = build_experiment_sized(mtu, 4, seed, 40);
        let plain = run_measured(&exp, 3, false);
        let mut rec = iba_obs::ObsRecorder::new();
        let recorded = run_measured_recorded(&exp, 3, false, &mut rec);
        assert_eq!(
            plain.delivery_digest, recorded.delivery_digest,
            "mtu={mtu} seed={seed}: recording changed the event order"
        );
        assert_eq!(plain.delivery_count, recorded.delivery_count);
        assert!(
            rec.metrics.sim_events.get() > 0,
            "recorded run observed no events"
        );
    }
}

/// Replaying the exact same experiment twice (fresh Fabric each time,
/// same pooled buffers and queue implementations) is bit-stable — the
/// pool's slab recycling must not introduce allocation-order effects.
#[test]
fn replay_is_bit_stable() {
    let exp = build_experiment_sized(256, 4, 21, 40);
    let a = run_measured(&exp, 3, false);
    let b = run_measured(&exp, 3, false);
    assert_eq!(a.delivery_digest, b.delivery_digest);
    assert_eq!(a.delivery_count, b.delivery_count);
}
