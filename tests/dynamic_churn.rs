//! Dynamic behaviour across crates: connections arriving and departing
//! while the fabric runs must keep every live guarantee and leave the
//! tables consistent and canonical.

use infiniband_qos::prelude::*;
use infiniband_qos::qos::{ChurnEvent, ChurnRunner};

fn build(seed: u64) -> (QosFrame, RequestGenerator) {
    let topo = generate(IrregularConfig::with_switches(4, seed));
    let routing = compute_routing(&topo);
    let frame = QosFrame::new(
        topo.clone(),
        routing,
        SlTable::paper_table1(),
        SimConfig::paper_default(256),
    );
    let gen = RequestGenerator::new(
        &topo,
        &SlTable::paper_table1(),
        &WorkloadConfig::new(256, seed ^ 0xC0FFEE),
    );
    (frame, gen)
}

#[test]
fn churn_preserves_guarantees_and_consistency() {
    let (mut frame, mut gen) = build(31);
    let mut events = Vec::new();
    for k in 0..120u64 {
        events.push(ChurnEvent::Arrive {
            at: k * 40_000,
            request: gen.next_request(),
        });
        if k % 3 == 2 {
            events.push(ChurnEvent::DepartOldest {
                at: k * 40_000 + 20_000,
            });
        }
    }
    let (mut fabric, mut obs) = frame.build_fabric(1, None);
    let stats = ChurnRunner::new(events).run(&mut frame, &mut fabric, &mut obs, 12_000_000);

    assert!(stats.admitted > 60, "only {} admitted", stats.admitted);
    assert_eq!(stats.departed, 40);
    assert!(obs.qos_packets > 500);
    let misses: u64 = obs.delay_by_sl.groups().map(|(_, d)| d.missed()).sum();
    assert_eq!(misses, 0, "churn broke a live guarantee");
    frame.manager.port_tables().check_all().unwrap();

    // Every table is still canonical: frees + defrag kept the layouts
    // optimal for future strict requests.
    for (_, table) in frame.manager.port_tables().tables() {
        assert!(
            infiniband_qos::core::is_canonical(table.occupancy()),
            "non-canonical table after churn"
        );
    }
}

#[test]
fn full_drain_returns_every_table_to_empty() {
    let (mut frame, mut gen) = build(32);
    let mut events = Vec::new();
    for k in 0..40u64 {
        events.push(ChurnEvent::Arrive {
            at: k * 10_000,
            request: gen.next_request(),
        });
    }
    for k in 0..40u64 {
        events.push(ChurnEvent::DepartOldest {
            at: 400_000 + k * 10_000,
        });
    }
    let (mut fabric, mut obs) = frame.build_fabric(2, None);
    let stats = ChurnRunner::new(events).run(&mut frame, &mut fabric, &mut obs, 2_000_000);
    assert_eq!(stats.admitted + stats.rejected, 40);
    assert_eq!(
        stats.departed + stats.empty_departures,
        40,
        "every departure event consumed"
    );
    assert_eq!(frame.manager.live_connections(), 0);
    for (_, table) in frame.manager.port_tables().tables() {
        assert_eq!(table.reserved_weight(), 0);
        assert_eq!(table.free_entries(), 64);
    }
}
